#include "dp/datapath.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::dp {

using mir::Opcode;

// ---------------------------------------------------------------------------
// Delay model — looked up from synth::TimingModel (the Virtex-II-class table
// by default); used for latch placement and by the retime pass.
// ---------------------------------------------------------------------------

bool primitiveForOpcode(Opcode op, BuildOptions::MultStyle style, synth::Primitive& out) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Neg:
      out = synth::Primitive::Add;
      return true;
    case Opcode::Mul:
      out = style == BuildOptions::MultStyle::Mult18 ? synth::Primitive::Mul18
                                                     : synth::Primitive::MulLut;
      return true;
    case Opcode::Div:
    case Opcode::Rem:
      out = synth::Primitive::Div;
      return true;
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
      out = synth::Primitive::Logic;
      return true;
    case Opcode::Shl:
    case Opcode::Shr:
      out = synth::Primitive::Shift;
      return true;
    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::Sgt:
    case Opcode::Sge:
      out = synth::Primitive::Cmp;
      return true;
    case Opcode::Mux:
      out = synth::Primitive::Mux;
      return true;
    case Opcode::Lut:
      out = synth::Primitive::Rom;
      return true;
    default:
      return false; // wiring / I/O copies / control: free
  }
}

double opDelayNs(const synth::TimingModel& model, Opcode op, int width,
                 BuildOptions::MultStyle style) {
  // Constant shifts are free wiring (callers pass width 0 to signal one —
  // see timedOpDelayNs).
  if ((op == Opcode::Shl || op == Opcode::Shr) && width == 0) return 0.0;
  synth::Primitive p;
  if (!primitiveForOpcode(op, style, p)) return 0.0;
  return model.delayNs(p, width);
}

double opDelayNs(Opcode op, int width, BuildOptions::MultStyle style) {
  return opDelayNs(synth::TimingModel::virtex2(), op, width, style);
}

double timedOpDelayNs(const DataPath& d, const DpOp& o, const synth::TimingModel& model,
                      BuildOptions::MultStyle style) {
  int w = 32;
  if (o.result >= 0) w = d.values[static_cast<size_t>(o.result)].width;
  // Comparisons produce 1 bit but their carry chain spans the operands.
  switch (o.op) {
    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::Sgt:
    case Opcode::Sge:
      w = 1;
      for (int vid : o.operands) {
        w = std::max(w, d.values[static_cast<size_t>(vid)].width);
      }
      break;
    default:
      break;
  }
  // Constant shift amounts make shifts free wiring.
  if ((o.op == Opcode::Shl || o.op == Opcode::Shr) && o.operands.size() == 2) {
    const DpValue& sh = d.values[static_cast<size_t>(o.operands[1])];
    if (sh.def >= 0 && d.ops[static_cast<size_t>(sh.def)].op == Opcode::Ldc) {
      return opDelayNs(model, o.op, 0, style);
    }
  }
  const double delay = opDelayNs(model, o.op, w, style);
  // Per-hop routing margin, mirroring the synthesis model.
  return delay > 0 ? delay + model.routingPerHopNs : 0.0;
}

namespace {

/// Canonical-signed-digit decomposition of |c|: returns (position, +1/-1)
/// pairs with no two adjacent nonzero digits.
std::vector<std::pair<int, int>> csdDigits(int64_t c) {
  std::vector<std::pair<int, int>> digits;
  int pos = 0;
  while (c != 0) {
    if (c & 1) {
      const int digit = 2 - static_cast<int>(c & 3); // +1 or -1
      digits.emplace_back(pos, digit);
      c -= digit;
    }
    c >>= 1;
    ++pos;
  }
  return digits;
}

} // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

namespace {

class Builder {
 public:
  Builder(const mir::FunctionIR& fn, DataPath& out, DiagEngine& diags, const BuildOptions& opt)
      : fn_(fn), out_(out), diags_(diags), opt_(opt) {}

  bool run() {
    out_ = DataPath{};
    out_.name = fn_.name;
    out_.tables = fn_.tables;

    std::vector<std::string> ssaErrors;
    if (!fn_.verifySSA(ssaErrors)) {
      for (const auto& e : ssaErrors) diags_.error({}, "datapath: input MIR not in SSA form: " + e);
      return false;
    }

    dt_ = mir::computeDominators(fn_);
    createPorts();
    if (!placeOps()) return false;
    insertPipeNodes();
    if (opt_.inferBitWidths) {
      if (opt_.widthMode == BuildOptions::WidthMode::RangeAnalysis) {
        inferWidths();
      } else {
        inferWidthsPortOpcode();
      }
    }
    assignStages();
    computeStats();
    return !failed_;
  }

 private:
  const mir::FunctionIR& fn_;
  DataPath& out_;
  DiagEngine& diags_;
  BuildOptions opt_;
  mir::DomTree dt_;
  bool failed_ = false;

  std::map<int, int> regValue_;  ///< MIR reg -> value id
  std::map<int, int> blockNode_; ///< MIR block -> soft node id
  std::map<int, int> joinMuxNode_; ///< join block -> mux node id

  void fail(std::string msg) {
    diags_.error({}, std::move(msg));
    failed_ = true;
  }

  int newValue(ScalarType t, std::string name, int defOp) {
    DpValue v;
    v.id = static_cast<int>(out_.values.size());
    v.declared = t;
    v.width = t.width;
    v.isSigned = t.isSigned;
    v.range = ValueRange::ofType(t);
    v.name = std::move(name);
    v.def = defOp;
    out_.values.push_back(std::move(v));
    return out_.values.back().id;
  }

  int newNode(NodeKind kind, int cfgBlock, std::string label) {
    DpNode n;
    n.id = static_cast<int>(out_.nodes.size());
    n.kind = kind;
    n.cfgBlock = cfgBlock;
    n.label = std::move(label);
    out_.nodes.push_back(std::move(n));
    return out_.nodes.back().id;
  }

  int addOp(Opcode op, ScalarType resultType, std::vector<int> operands, int node,
            const std::string& resultName = "") {
    DpOp o;
    o.op = op;
    o.operands = std::move(operands);
    o.node = node;
    const int idx = static_cast<int>(out_.ops.size());
    if (op != Opcode::Out && op != Opcode::Snx) {
      o.result = newValue(resultType, resultName, idx);
    }
    out_.ops.push_back(std::move(o));
    out_.nodes[static_cast<size_t>(node)].ops.push_back(idx);
    return idx;
  }

  int valueOf(const mir::Operand& o, ScalarType typeForImm, int node) {
    if (o.isImm()) {
      const int opIdx = addOp(Opcode::Ldc, typeForImm, {}, node, fmt("c%0", o.imm));
      out_.ops[static_cast<size_t>(opIdx)].imm = o.imm;
      out_.values[static_cast<size_t>(out_.ops[static_cast<size_t>(opIdx)].result)].range =
          ValueRange::constant(Value::fromInt(typeForImm, o.imm).toInt());
      return out_.ops[static_cast<size_t>(opIdx)].result;
    }
    const auto it = regValue_.find(o.reg);
    if (it == regValue_.end()) {
      fail(fmt("datapath: use of v%0 before definition", o.reg));
      return newValue(ScalarType::intTy(), "error", -1);
    }
    return it->second;
  }

  void createPorts() {
    int inIdx = 0;
    for (const auto& p : fn_.params) {
      if (p.isOutput) {
        out_.outputs.push_back({p.name, p.type, -1});
      } else {
        DataPath::Port port{p.name, p.type, -1};
        port.value = newValue(p.type, p.name, -1);
        out_.values[static_cast<size_t>(port.value)].inputPort = inIdx++;
        out_.inputs.push_back(port);
      }
    }
    out_.outputStage.assign(out_.outputs.size(), 0);
    for (const auto& fb : fn_.feedbacks) {
      out_.feedbacks.push_back({fb.name, fb.type, fb.initial, -1, -1, 0});
    }
  }

  DataPath::Feedback& feedbackOf(const std::string& name) {
    for (auto& fb : out_.feedbacks) {
      if (fb.name == name) return fb;
    }
    // No shared fallback object: a function-local static here would be the
    // one mutable global in the whole pipeline (concurrent compiles could
    // alias it). An unknown feedback is a compiler invariant violation —
    // thrown, not abort()ed, so the containment boundary classifies it as
    // InternalError instead of killing every sibling job in the batch.
    throw InternalCompilerError(fmt("datapath: unknown feedback '%0'", name));
  }

  /// The branch structure of a join block: selector value + which pred is
  /// the "true" arm.
  struct Diamond {
    int selReg = -1;
    size_t truePredSlot = 0;
  };

  std::optional<Diamond> analyzeJoin(const mir::Block& join) {
    if (join.preds.size() != 2) {
      fail(fmt("datapath: join bb%0 has %1 predecessors (structured if/else expected)", join.id,
               join.preds.size()));
      return std::nullopt;
    }
    const int d = dt_.idom[static_cast<size_t>(join.id)];
    const mir::Block& db = fn_.blocks[static_cast<size_t>(d)];
    const mir::Instr* term = db.terminator();
    if (!term || term->op != Opcode::Br || db.succs.size() != 2) {
      fail(fmt("datapath: join bb%0's dominator bb%1 is not a conditional branch", join.id, d));
      return std::nullopt;
    }
    Diamond dia;
    dia.selReg = term->srcs[0].reg;
    // Which pred slot lies on the true arm (reached via db.succs[0])?
    const int trueArm = db.succs[0];
    for (size_t slot = 0; slot < join.preds.size(); ++slot) {
      const int p = join.preds[slot];
      if (p == trueArm || dt_.dominates(trueArm, p)) {
        dia.truePredSlot = slot;
        return dia;
      }
    }
    // Degenerate: the true arm may be the join itself (empty then-branch
    // jumping straight to join): then the *other* pred is the false arm.
    for (size_t slot = 0; slot < join.preds.size(); ++slot) {
      if (join.preds[slot] == d) {
        // Edge d->join directly: is it the true or false successor?
        dia.truePredSlot = (db.succs[0] == join.id) ? slot : 1 - slot;
        return dia;
      }
    }
    fail(fmt("datapath: cannot map phi operands of bb%0 to branch arms", join.id));
    return std::nullopt;
  }

  bool placeOps() {
    for (int bid : mir::reversePostOrder(fn_)) {
      const mir::Block& b = fn_.blocks[static_cast<size_t>(bid)];
      int softNode = -1;
      auto nodeFor = [&]() {
        if (softNode < 0) {
          softNode = newNode(NodeKind::Soft, bid, fmt("node%0", out_.nodes.size() + 1));
          blockNode_[bid] = softNode;
        }
        return softNode;
      };
      std::optional<Diamond> dia;
      int muxNode = -1;

      for (const auto& in : b.instrs) {
        switch (in.op) {
          case Opcode::In:
            regValue_[in.dst] = out_.inputs[static_cast<size_t>(in.aux0)].value;
            break;
          case Opcode::Out: {
            const int v = valueOf(in.srcs[0], in.type, nodeFor());
            out_.outputs[static_cast<size_t>(in.aux0)].value = v;
            break;
          }
          case Opcode::Lpr: {
            const int node = nodeFor();
            const int opIdx = addOp(Opcode::Lpr, in.type, {}, node, in.symbol + "_prev");
            out_.ops[static_cast<size_t>(opIdx)].symbol = in.symbol;
            auto& fb = feedbackOf(in.symbol);
            if (fb.lprValue >= 0) {
              // One physical register: alias further LPRs to the same value.
              regValue_[in.dst] = fb.lprValue;
              // Drop the duplicate op we just created.
              out_.nodes[static_cast<size_t>(node)].ops.pop_back();
              out_.ops.pop_back();
              out_.values.pop_back();
            } else {
              fb.lprValue = out_.ops[static_cast<size_t>(opIdx)].result;
              regValue_[in.dst] = fb.lprValue;
            }
            break;
          }
          case Opcode::Snx: {
            const int v = valueOf(in.srcs[0], in.type, nodeFor());
            feedbackOf(in.symbol).snxValue = v;
            break;
          }
          case Opcode::Phi: {
            if (!dia) {
              dia = analyzeJoin(b);
              if (!dia) return false;
              muxNode = newNode(NodeKind::Mux, bid, fmt("mux@bb%0", bid));
              joinMuxNode_[bid] = muxNode;
            }
            const int sel = valueOf(mir::Operand::ofReg(dia->selReg), ScalarType::boolTy(), muxNode);
            const int tv = valueOf(in.srcs[dia->truePredSlot], in.type, muxNode);
            const int fv = valueOf(in.srcs[1 - dia->truePredSlot], in.type, muxNode);
            const int opIdx = addOp(Opcode::Mux, in.type, {sel, tv, fv}, muxNode,
                                    fn_.regNames[static_cast<size_t>(in.dst)]);
            regValue_[in.dst] = out_.ops[static_cast<size_t>(opIdx)].result;
            ++out_.muxOpCount;
            break;
          }
          case Opcode::Br:
          case Opcode::Jmp:
          case Opcode::Ret:
            break; // control flow is encoded by the mux nodes
          case Opcode::Div:
          case Opcode::Rem:
            if (opt_.expandDividers) {
              regValue_[in.dst] = emitRestoringDivider(in, in.op == Opcode::Rem, nodeFor());
              break;
            }
            placeGenericOp(in, nodeFor());
            break;
          case Opcode::Mul: {
            // 'LUT' multiplier style: decompose constant multiplications
            // into canonical-signed-digit shift-adds (Table 1 FIR/DCT).
            if (opt_.multStyle == BuildOptions::MultStyle::Lut) {
              const auto c = constantOperand(in);
              if (c) {
                regValue_[in.dst] = emitCsdMultiply(in, *c, nodeFor());
                break;
              }
            }
            placeGenericOp(in, nodeFor());
            break;
          }
          default:
            placeGenericOp(in, nodeFor());
            break;
        }
        if (failed_) return false;
      }
    }
    // Every output must be driven.
    for (const auto& o : out_.outputs) {
      if (o.value < 0) fail(fmt("datapath: output port '%0' is never written", o.name));
    }
    for (const auto& fb : out_.feedbacks) {
      if (fb.snxValue < 0) fail(fmt("datapath: feedback '%0' is never stored", fb.name));
    }
    return !failed_;
  }

  /// Constant operand of a Mul: an immediate, or a register defined by Ldc.
  std::optional<std::pair<int, int64_t>> constantOperand(const mir::Instr& in) {
    for (int side = 0; side < 2; ++side) {
      const mir::Operand& o = in.srcs[static_cast<size_t>(side)];
      if (o.isImm()) return std::make_pair(side, o.imm);
      if (o.isReg()) {
        const auto it = regValue_.find(o.reg);
        if (it != regValue_.end()) {
          const DpValue& v = out_.values[static_cast<size_t>(it->second)];
          if (v.def >= 0 && out_.ops[static_cast<size_t>(v.def)].op == Opcode::Ldc) {
            return std::make_pair(side, out_.ops[static_cast<size_t>(v.def)].imm);
          }
        }
      }
    }
    return std::nullopt;
  }

  /// x * c as a CSD shift-add tree; returns the result value id.
  int emitCsdMultiply(const mir::Instr& in, std::pair<int, int64_t> constSide, int node) {
    const mir::Operand& xOp = in.srcs[static_cast<size_t>(1 - constSide.first)];
    const int x = valueOf(xOp, in.type, node);
    int64_t c = constSide.second;
    const bool negate = c < 0;
    if (negate) c = -c;
    if (c == 0) {
      const int z = addOp(Opcode::Ldc, in.type, {}, node, "c0");
      out_.values[static_cast<size_t>(out_.ops[static_cast<size_t>(z)].result)].range = ValueRange::constant(0);
      return out_.ops[static_cast<size_t>(z)].result;
    }
    int acc = -1;
    for (const auto& [pos, digit] : csdDigits(c)) {
      int term = x;
      if (pos > 0) {
        const int shOp = addOp(Opcode::Shl, in.type, {x, constantValue(pos, node)}, node);
        term = out_.ops[static_cast<size_t>(shOp)].result;
      }
      if (acc < 0) {
        if (digit < 0) {
          const int negOp = addOp(Opcode::Neg, in.type, {term}, node);
          acc = out_.ops[static_cast<size_t>(negOp)].result;
        } else {
          acc = term;
        }
      } else {
        const int addIdx = addOp(digit > 0 ? Opcode::Add : Opcode::Sub, in.type, {acc, term}, node);
        acc = out_.ops[static_cast<size_t>(addIdx)].result;
      }
    }
    if (negate) {
      const int negOp = addOp(Opcode::Neg, in.type, {acc}, node);
      acc = out_.ops[static_cast<size_t>(negOp)].result;
    }
    return acc;
  }

  /// Generic typed op creation returning the result value id.
  int addOpValue(Opcode op, ScalarType t, std::vector<int> operands, int node,
                 const std::string& name = "") {
    const int idx = addOp(op, t, std::move(operands), node, name);
    return out_.ops[static_cast<size_t>(idx)].result;
  }

  /// Restoring-divider array (section 4.2.4: SUIFvm division has no IEEE
  /// 1076.3 correspondence, so the compiler builds the circuit): one
  /// BitCat/compare/subtract/mux row per quotient bit, MSB first. The
  /// generic latch placement pipelines the rows. Matches the simulator's
  /// division convention exactly (q=all-ones, r=dividend when divisor==0).
  int emitRestoringDivider(const mir::Instr& in, bool isRem, int node) {
    const ScalarType rt = in.type;
    const int nVal = valueOf(in.srcs[0], rt, node);
    const int dVal = valueOf(in.srcs[1], rt, node);
    const ScalarType nTy = out_.values[static_cast<size_t>(nVal)].declared;
    const ScalarType dTy = out_.values[static_cast<size_t>(dVal)].declared;
    const int N = nTy.width;
    const int DW = dTy.width;
    const ScalarType uN = ScalarType::make(N, false);
    const ScalarType uD = ScalarType::make(DW, false);

    // Magnitudes (signed operands take an abs step; INT_MIN's magnitude is
    // representable once reinterpreted as unsigned).
    int nNeg = -1, dNeg = -1;
    int an = nVal, ad = dVal;
    if (nTy.isSigned) {
      const int zero = constantValue(0, node);
      nNeg = addOpValue(Opcode::Slt, ScalarType::boolTy(), {nVal, zero}, node, "n_neg");
      const int negN = addOpValue(Opcode::Neg, nTy, {nVal}, node);
      const int mag = addOpValue(Opcode::Mux, nTy, {nNeg, negN, nVal}, node, "n_mag");
      an = addOpValue(Opcode::Cast, uN, {mag}, node, "n_abs");
    } else if (nTy.width != N || nTy.isSigned) {
      an = addOpValue(Opcode::Cast, uN, {nVal}, node);
    }
    if (dTy.isSigned) {
      const int zero = constantValue(0, node);
      dNeg = addOpValue(Opcode::Slt, ScalarType::boolTy(), {dVal, zero}, node, "d_neg");
      const int negD = addOpValue(Opcode::Neg, dTy, {dVal}, node);
      const int mag = addOpValue(Opcode::Mux, dTy, {dNeg, negD, dVal}, node, "d_mag");
      ad = addOpValue(Opcode::Cast, uD, {mag}, node, "d_abs");
    }

    // Rows, MSB first. Remainder register runs at DW+1 bits.
    const ScalarType rTy = ScalarType::make(DW + 1, false);
    int r = constantValue(0, node);
    r = addOpValue(Opcode::Cast, ScalarType::make(1, false), {r}, node, "r_init");
    std::vector<int> qBits(static_cast<size_t>(N), -1);
    for (int k = N - 1; k >= 0; --k) {
      const int bit = [&] {
        const int bs = addOp(Opcode::BitSel, ScalarType::make(1, false), {an}, node, fmt("n_b%0", k));
        out_.ops[static_cast<size_t>(bs)].aux0 = k;
        out_.ops[static_cast<size_t>(bs)].aux1 = k;
        return out_.ops[static_cast<size_t>(bs)].result;
      }();
      // rShift = {r, bit} at DW+1 bits.
      const int rWide = addOpValue(Opcode::Cast, ScalarType::make(DW, false), {r}, node);
      const int rShift = addOpValue(Opcode::BitCat, rTy, {rWide, bit}, node, fmt("rsh%0", k));
      const int adWide = addOpValue(Opcode::Cast, rTy, {ad}, node);
      const int ge = addOpValue(Opcode::Sge, ScalarType::boolTy(), {rShift, adWide}, node,
                                fmt("q_b%0", k));
      const int diff = addOpValue(Opcode::Sub, rTy, {rShift, adWide}, node);
      const int rNext = addOpValue(Opcode::Mux, rTy, {ge, diff, rShift}, node);
      r = addOpValue(Opcode::Cast, ScalarType::make(DW, false), {rNext}, node, fmt("r%0", k));
      qBits[static_cast<size_t>(k)] = ge;
    }
    // Assemble the quotient from its bits, MSB down.
    int q = qBits[static_cast<size_t>(N - 1)];
    for (int k = N - 2; k >= 0; --k) {
      const int w = N - k;
      q = addOpValue(Opcode::BitCat, ScalarType::make(w, false), {q, qBits[static_cast<size_t>(k)]},
                     node, fmt("q_hi%0", k));
    }

    // Divide-by-zero handling per the shared convention.
    const int dzZero = constantValue(0, node);
    const int dz = addOpValue(Opcode::Seq, ScalarType::boolTy(),
                              {addOpValue(Opcode::Cast, uD, {dVal}, node), dzZero}, node, "d_is0");

    if (!isRem) {
      int ext = addOpValue(Opcode::Cast, rt, {q}, node, "q_ext");
      if (rt.isSigned && (nTy.isSigned || dTy.isSigned)) {
        int sign = -1;
        if (nNeg >= 0 && dNeg >= 0) {
          sign = addOpValue(Opcode::Xor, ScalarType::boolTy(), {nNeg, dNeg}, node, "q_sign");
        } else {
          sign = nNeg >= 0 ? nNeg : dNeg;
        }
        if (sign >= 0) {
          const int neg = addOpValue(Opcode::Neg, rt, {ext}, node);
          ext = addOpValue(Opcode::Mux, rt, {sign, neg, ext}, node);
        }
      }
      const int ones = constantValue(Value(rt, ~uint64_t{0}).toInt(), node);
      const int onesT = addOpValue(Opcode::Cast, rt, {ones}, node);
      return addOpValue(Opcode::Mux, rt, {dz, onesT, ext}, node, "quot");
    }

    // Remainder: magnitude in r (DW bits), sign follows the dividend; the
    // divisor==0 convention returns the dividend's *raw bits* zero-extended
    // (mirroring ops::rem).
    int rext = addOpValue(Opcode::Cast, rt, {r}, node, "r_ext");
    if (rt.isSigned && nTy.isSigned && nNeg >= 0) {
      const int neg = addOpValue(Opcode::Neg, rt, {rext}, node);
      rext = addOpValue(Opcode::Mux, rt, {nNeg, neg, rext}, node);
    }
    const int nRaw = addOpValue(Opcode::Cast, uN, {nVal}, node);
    const int nRawExt = addOpValue(Opcode::Cast, rt, {nRaw}, node);
    return addOpValue(Opcode::Mux, rt, {dz, nRawExt, rext}, node, "remn");
  }

  int constantValue(int64_t v, int node) {
    const int opIdx = addOp(Opcode::Ldc, ScalarType::intTy(), {}, node, fmt("c%0", v));
    out_.ops[static_cast<size_t>(opIdx)].imm = v;
    out_.values[static_cast<size_t>(out_.ops[static_cast<size_t>(opIdx)].result)].range = ValueRange::constant(v);
    return out_.ops[static_cast<size_t>(opIdx)].result;
  }

  void placeGenericOp(const mir::Instr& in, int node) {
    std::vector<int> operands;
    for (const auto& o : in.srcs) operands.push_back(valueOf(o, in.type, node));
    const int opIdx =
        addOp(in.op, in.type, std::move(operands), node,
              in.hasDst() ? fn_.regNames[static_cast<size_t>(in.dst)] : std::string());
    DpOp& o = out_.ops[static_cast<size_t>(opIdx)];
    o.imm = in.imm;
    o.aux0 = in.aux0;
    o.aux1 = in.aux1;
    o.symbol = in.symbol;
    if (in.op == Opcode::Ldc) {
      out_.values[static_cast<size_t>(o.result)].range =
          ValueRange::constant(Value::fromInt(in.type, in.imm).toInt());
    }
    if (in.hasDst()) regValue_[in.dst] = o.result;
  }

  // --- pipe nodes ------------------------------------------------------------

  /// For each diamond, values defined above the branch and consumed at or
  /// after the join are routed through a PIPE hard node (paper Fig 6 node 6)
  /// so every definition-reference pair stays adjoining.
  void insertPipeNodes() {
    for (const auto& [joinBid, muxNode] : joinMuxNode_) {
      const int d = dt_.idom[static_cast<size_t>(joinBid)];
      // Values defined in blocks dominating the branch head.
      auto definedAbove = [&](const DpValue& v) {
        if (v.inputPort >= 0) return true;
        if (v.def < 0) return false;
        const DpOp& defOp = out_.ops[static_cast<size_t>(v.def)];
        if (defOp.op == Opcode::Ldc) return false; // constants are free everywhere
        const DpNode& n = out_.nodes[static_cast<size_t>(defOp.node)];
        if (n.cfgBlock < 0) return false;
        return dt_.dominates(n.cfgBlock, d) || n.cfgBlock == d;
      };
      // Ops at or after the join (including its mux node).
      auto consumesAtOrAfterJoin = [&](const DpOp& o) {
        const DpNode& n = out_.nodes[static_cast<size_t>(o.node)];
        if (n.id == muxNode) return true;
        if (n.cfgBlock < 0) return false;
        return n.cfgBlock == joinBid || dt_.dominates(joinBid, n.cfgBlock);
      };

      std::map<int, std::vector<std::pair<int, size_t>>> rerouted; // value -> (op, operand slot)
      for (size_t oi = 0; oi < out_.ops.size(); ++oi) {
        DpOp& o = out_.ops[oi];
        if (!consumesAtOrAfterJoin(o)) continue;
        for (size_t s = 0; s < o.operands.size(); ++s) {
          const DpValue& v = out_.values[static_cast<size_t>(o.operands[s])];
          if (definedAbove(v)) rerouted[v.id].emplace_back(static_cast<int>(oi), s);
        }
      }
      if (rerouted.empty()) continue;
      const int pipeNode = newNode(NodeKind::Pipe, -1, fmt("pipe@bb%0", joinBid));
      for (const auto& [vid, uses] : rerouted) {
        const DpValue& src = out_.values[static_cast<size_t>(vid)];
        const int movIdx = addOp(Opcode::Mov, src.declared, {vid}, pipeNode, src.name + "_pipe");
        const int copy = out_.ops[static_cast<size_t>(movIdx)].result;
        for (const auto& [oi, slot] : uses) {
          out_.ops[static_cast<size_t>(oi)].operands[slot] = copy;
        }
        // Outputs / feedback stores referencing the original keep it (they
        // sit at the exit, where the copy is equivalent; keep rewiring
        // consistent there too).
        for (auto& port : out_.outputs) {
          if (port.value == vid && consumesAtOrAfterJoinPort()) port.value = copy;
        }
      }
    }
  }

  // Output ports conceptually live at the function exit, which every join
  // dominates in structured code.
  static bool consumesAtOrAfterJoinPort() { return true; }

  // --- bit-width inference ------------------------------------------------------

  void inferWidths() {
    // Topological order over values via op dependencies.
    const std::vector<int> order = topoOrderOps(out_);
    // Input ports and LPRs already carry their declared ranges.
    for (auto& fbv : out_.feedbacks) {
      if (fbv.lprValue >= 0) {
        out_.values[static_cast<size_t>(fbv.lprValue)].range = ValueRange::ofType(fbv.type);
      }
    }
    for (int oi : order) {
      DpOp& o = out_.ops[static_cast<size_t>(oi)];
      if (o.result < 0) continue;
      DpValue& res = out_.values[static_cast<size_t>(o.result)];
      const ScalarType declared = res.declared;
      auto rng = [&](size_t k) { return out_.values[static_cast<size_t>(o.operands[k])].range; };
      ValueRange r = ValueRange::ofType(declared);
      switch (o.op) {
        case Opcode::Ldc:
          r = ValueRange::constant(Value::fromInt(declared, o.imm).toInt());
          break;
        case Opcode::Mov:
        case Opcode::Cast:
          r = rng(0).convertTo(declared);
          break;
        case Opcode::Add: r = rng(0).add(rng(1)).convertTo(declared); break;
        case Opcode::Sub: r = rng(0).sub(rng(1)).convertTo(declared); break;
        case Opcode::Mul: r = rng(0).mul(rng(1)).convertTo(declared); break;
        case Opcode::Div:
          // Divide-by-zero yields all-ones at the result width; if the
          // divisor may be zero the hull must cover that.
          if (rng(1).contains(0)) {
            r = ValueRange::ofType(declared);
          } else {
            r = rng(0).divide(rng(1)).convertTo(declared);
          }
          break;
        case Opcode::Rem: r = rng(0).rem(rng(1)).convertTo(declared); break;
        case Opcode::Neg: r = rng(0).neg().convertTo(declared); break;
        case Opcode::And: r = rng(0).bitAnd(rng(1)).convertTo(declared); break;
        case Opcode::Or: r = rng(0).bitOr(rng(1)).convertTo(declared); break;
        case Opcode::Xor: r = rng(0).bitXor(rng(1)).convertTo(declared); break;
        case Opcode::Not: r = rng(0).bitNot().convertTo(declared); break;
        case Opcode::Shl: r = rng(0).shl(rng(1)).convertTo(declared); break;
        case Opcode::Shr: r = rng(0).shr(rng(1)).convertTo(declared); break;
        case Opcode::Seq:
        case Opcode::Sne:
        case Opcode::Slt:
        case Opcode::Sle:
        case Opcode::Sgt:
        case Opcode::Sge:
          r = ValueRange::boolean();
          break;
        case Opcode::Mux:
          r = rng(1).join(rng(2)).convertTo(declared);
          break;
        case Opcode::Lut: {
          const auto* t = [&]() -> const mir::FunctionIR::Table* {
            for (const auto& tb : out_.tables) {
              if (tb.name == o.symbol) return &tb;
            }
            return nullptr;
          }();
          if (t && !t->values.empty()) {
            int64_t lo = t->values[0], hi = t->values[0];
            for (int64_t v : t->values) {
              lo = std::min(lo, v);
              hi = std::max(hi, v);
            }
            r = ValueRange(lo, hi);
          }
          break;
        }
        case Opcode::BitSel:
          r = ValueRange(0, (ValueRange::Int{1} << (o.aux0 - o.aux1 + 1)) - 1);
          break;
        case Opcode::BitCat:
          r = ValueRange(0, (ValueRange::Int{1} << declared.width) - 1);
          break;
        case Opcode::Lpr:
          r = ValueRange::ofType(declared);
          break;
        default:
          break;
      }
      res.range = r;
      bool needsSign = false;
      const int w = r.requiredWidth(&needsSign);
      res.width = std::min(w, declared.width);
      res.isSigned = needsSign;
      out_.narrowedBits += declared.width - res.width;
    }
  }

  /// The paper's structural width rule: propagate widths forward from the
  /// port sizes through per-opcode growth formulas, truncating at each
  /// value's declared (C-semantics) width. No value ranges — a constant 3
  /// is as wide as its literal type says. Sound because every formula
  /// bounds the true value range of the operation.
  void inferWidthsPortOpcode() {
    const std::vector<int> order = topoOrderOps(out_);
    for (auto& fbv : out_.feedbacks) {
      if (fbv.lprValue >= 0) {
        DpValue& v = out_.values[static_cast<size_t>(fbv.lprValue)];
        v.width = fbv.type.width;
        v.isSigned = fbv.type.isSigned;
      }
    }
    for (int oi : order) {
      DpOp& o = out_.ops[static_cast<size_t>(oi)];
      if (o.result < 0) continue;
      DpValue& res = out_.values[static_cast<size_t>(o.result)];
      const ScalarType declared = res.declared;
      auto w = [&](size_t k) { return out_.values[static_cast<size_t>(o.operands[k])].width; };
      auto sgn = [&](size_t k) { return out_.values[static_cast<size_t>(o.operands[k])].isSigned; };
      int width = declared.width;
      bool isSigned = declared.isSigned;
      switch (o.op) {
        case Opcode::Ldc: {
          const int64_t c = Value::fromInt(declared, o.imm).toInt();
          width = c < 0 ? bitsForSigned(c) : bitsForUnsigned(static_cast<uint64_t>(c));
          isSigned = c < 0;
          break;
        }
        case Opcode::Add:
        case Opcode::Sub:
          isSigned = sgn(0) || sgn(1) || o.op == Opcode::Sub;
          width = std::max(w(0) + (isSigned && !sgn(0) ? 1 : 0),
                           w(1) + (isSigned && !sgn(1) ? 1 : 0)) + 1;
          break;
        case Opcode::Mul:
          width = w(0) + w(1);
          isSigned = sgn(0) || sgn(1);
          break;
        case Opcode::Neg:
          width = w(0) + 1;
          isSigned = true;
          break;
        case Opcode::And:
          // Unsigned & unsigned is bounded by the narrower operand; a
          // signed operand sign-extends, so the bound is the wider one.
          if (!sgn(0) && !sgn(1)) {
            width = std::min(w(0), w(1));
            isSigned = false;
          } else {
            width = std::max(w(0), w(1));
            isSigned = sgn(0) && sgn(1);
          }
          break;
        case Opcode::Or:
        case Opcode::Xor:
          // A mixed-signedness OR needs one extra bit so the unsigned
          // operand's full range still fits in the signed result.
          isSigned = sgn(0) || sgn(1);
          width = std::max(w(0) + (isSigned && !sgn(0) ? 1 : 0),
                           w(1) + (isSigned && !sgn(1) ? 1 : 0));
          break;
        case Opcode::Not:
          width = w(0);
          isSigned = true;
          break;
        case Opcode::Shl: {
          // Constant shift grows by the amount; variable shift grows to the
          // declared width.
          const DpValue& sh = out_.values[static_cast<size_t>(o.operands[1])];
          if (sh.def >= 0 && out_.ops[static_cast<size_t>(sh.def)].op == Opcode::Ldc) {
            width = w(0) + static_cast<int>(out_.ops[static_cast<size_t>(sh.def)].imm);
          } else {
            width = declared.width;
          }
          isSigned = sgn(0);
          break;
        }
        case Opcode::Shr:
          width = w(0);
          isSigned = sgn(0);
          break;
        case Opcode::Seq:
        case Opcode::Sne:
        case Opcode::Slt:
        case Opcode::Sle:
        case Opcode::Sgt:
        case Opcode::Sge:
          width = 1;
          isSigned = false;
          break;
        case Opcode::Mux:
          isSigned = sgn(1) || sgn(2);
          width = std::max(w(1) + (isSigned && !sgn(1) ? 1 : 0),
                           w(2) + (isSigned && !sgn(2) ? 1 : 0));
          break;
        case Opcode::Mov:
        case Opcode::Cast:
          width = std::min(w(0), declared.width);
          isSigned = declared.width < w(0) ? declared.isSigned : sgn(0);
          break;
        case Opcode::BitSel:
          width = o.aux0 - o.aux1 + 1;
          isSigned = false;
          break;
        case Opcode::BitCat:
          width = declared.width;
          isSigned = false;
          break;
        default:
          break;
      }
      res.width = std::max(1, std::min(width, declared.width));
      res.isSigned = res.width == declared.width ? declared.isSigned : isSigned;
      // Keep the range consistent with the (coarser) width for any
      // downstream consumer of `range`.
      res.range = ValueRange::ofType(ScalarType::make(res.width, res.isSigned));
      out_.narrowedBits += declared.width - res.width;
    }
  }

  // --- pipelining ------------------------------------------------------------------

  void assignStages() {
    std::vector<double> delay(out_.ops.size(), 0);
    for (size_t oi = 0; oi < out_.ops.size(); ++oi) {
      delay[oi] = timedOpDelayNs(out_, out_.ops[oi], synth::TimingModel::virtex2(),
                                 opt_.multStyle);
    }
    assignStagesGreedy(out_, delay, opt_.targetStageDelayNs, opt_.pipeline);
  }

  void computeStats() {
    out_.softNodeCount = 0;
    out_.hardNodeCount = 0;
    for (const auto& n : out_.nodes) {
      if (n.kind == NodeKind::Soft) {
        ++out_.softNodeCount;
      } else {
        ++out_.hardNodeCount;
      }
    }
    recomputePipelineStats(out_);
  }
};

} // namespace

// ---------------------------------------------------------------------------
// Staging primitives (shared between the Builder's seed placement and the
// timing-driven retime pass, src/dp/retime.cpp)
// ---------------------------------------------------------------------------

std::vector<int> topoOrderOps(const DataPath& d) {
  // Kahn over value dependencies; ops only depend on op-produced values.
  std::vector<int> indeg(d.ops.size(), 0);
  std::vector<std::vector<int>> consumers(d.values.size());
  for (size_t oi = 0; oi < d.ops.size(); ++oi) {
    for (int v : d.ops[oi].operands) {
      const int def = d.values[static_cast<size_t>(v)].def;
      if (def >= 0) ++indeg[oi];
      consumers[static_cast<size_t>(v)].push_back(static_cast<int>(oi));
    }
  }
  std::vector<int> ready, order;
  for (size_t oi = 0; oi < d.ops.size(); ++oi) {
    if (indeg[oi] == 0) ready.push_back(static_cast<int>(oi));
  }
  while (!ready.empty()) {
    const int oi = ready.back();
    ready.pop_back();
    order.push_back(oi);
    const int res = d.ops[static_cast<size_t>(oi)].result;
    if (res < 0) continue;
    for (int c : consumers[static_cast<size_t>(res)]) {
      if (--indeg[static_cast<size_t>(c)] == 0) ready.push_back(c);
    }
  }
  if (order.size() != d.ops.size()) {
    throw InternalCompilerError(
        fmt("datapath: op graph has a combinational cycle (%0 of %1 ops schedulable)",
            order.size(), d.ops.size()));
  }
  return order;
}

std::vector<int> feedbackConeOf(const DataPath& d) {
  // Ops on a path LPR -> SNX for the same register must share a stage (the
  // loop closes through one register, Fig 7).
  std::vector<int> coneOf(d.ops.size(), -1);
  for (size_t fi = 0; fi < d.feedbacks.size(); ++fi) {
    const auto& fb = d.feedbacks[fi];
    if (fb.lprValue < 0 || fb.snxValue < 0) continue;
    // Forward-reachable from the LPR value.
    std::vector<char> fromLpr(d.ops.size(), 0);
    std::function<void(int)> mark = [&](int vid) {
      for (size_t oi = 0; oi < d.ops.size(); ++oi) {
        if (fromLpr[oi]) continue;
        for (int op : d.ops[oi].operands) {
          if (op == vid) {
            fromLpr[oi] = 1;
            if (d.ops[oi].result >= 0) mark(d.ops[oi].result);
            break;
          }
        }
      }
    };
    mark(fb.lprValue);
    // Backward from the SNX value.
    std::vector<char> toSnx(d.ops.size(), 0);
    std::function<void(int)> markBack = [&](int vid) {
      const int def = d.values[static_cast<size_t>(vid)].def;
      if (def < 0 || toSnx[static_cast<size_t>(def)]) return;
      toSnx[static_cast<size_t>(def)] = 1;
      for (int op : d.ops[static_cast<size_t>(def)].operands) markBack(op);
    };
    markBack(fb.snxValue);
    for (size_t oi = 0; oi < d.ops.size(); ++oi) {
      if (fromLpr[oi] && toSnx[oi]) coneOf[oi] = static_cast<int>(fi);
    }
    // The LPR op itself belongs to the cone.
    const int lprDef = d.values[static_cast<size_t>(fb.lprValue)].def;
    if (lprDef >= 0) coneOf[static_cast<size_t>(lprDef)] = static_cast<int>(fi);
  }
  return coneOf;
}

void assignStagesGreedy(DataPath& d, const std::vector<double>& delay, double targetNs,
                        bool pipeline) {
  const std::vector<int> order = topoOrderOps(d);
  const std::vector<int> coneOf = feedbackConeOf(d);

  if (!pipeline) {
    for (auto& o : d.ops) o.stage = 0;
    d.stageCount = 1;
  } else {
    std::vector<int> coneStage(d.feedbacks.size(), -1);
    for (int oi : order) {
      DpOp& o = d.ops[static_cast<size_t>(oi)];
      int s = 0;
      double sameStageDelay = 0;
      for (int vid : o.operands) {
        const DpValue& v = d.values[static_cast<size_t>(vid)];
        if (v.def < 0) continue; // inputs arrive registered at stage 0
        const DpOp& defOp = d.ops[static_cast<size_t>(v.def)];
        if (defOp.op == Opcode::Ldc) continue; // constants are free
        if (defOp.stage > s) {
          s = defOp.stage;
          sameStageDelay = defOp.pathDelayNs;
        } else if (defOp.stage == s) {
          sameStageDelay = std::max(sameStageDelay, defOp.pathDelayNs);
        }
      }
      const double dly = delay[static_cast<size_t>(oi)];
      if (coneOf[static_cast<size_t>(oi)] >= 0) {
        // Feedback cone: everything lands in the cone's stage. External
        // inputs that already carry combinational delay are registered
        // into the cone (paper Fig 7: the feedback loop is its own latch
        // stage) so the loop stays short.
        int& cs = coneStage[static_cast<size_t>(coneOf[static_cast<size_t>(oi)])];
        const int wanted = sameStageDelay > 0 ? s + 1 : s;
        if (cs < 0) cs = wanted;
        cs = std::max(cs, wanted);
        o.stage = cs;
        o.pathDelayNs = dly;
      } else if (sameStageDelay + dly > targetNs && sameStageDelay > 0) {
        o.stage = s + 1;
        o.pathDelayNs = dly;
      } else {
        o.stage = s;
        o.pathDelayNs = sameStageDelay + dly;
      }
    }
    // Cone stages may have been raised after members were placed; apply
    // the final cone stage and repair downstream ordering.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int oi : order) {
        DpOp& o = d.ops[static_cast<size_t>(oi)];
        if (coneOf[static_cast<size_t>(oi)] >= 0) {
          int& cs = coneStage[static_cast<size_t>(coneOf[static_cast<size_t>(oi)])];
          // External inputs that arrive later drag the whole cone later.
          for (int vid : o.operands) {
            const DpValue& v = d.values[static_cast<size_t>(vid)];
            if (v.def < 0) continue;
            const DpOp& defOp = d.ops[static_cast<size_t>(v.def)];
            if (defOp.op == Opcode::Ldc || coneOf[static_cast<size_t>(v.def)] >= 0) continue;
            if (defOp.stage > cs) {
              cs = defOp.stage;
              changed = true;
            }
          }
          if (o.stage != cs) {
            o.stage = cs;
            changed = true;
          }
          continue;
        }
        for (int vid : o.operands) {
          const DpValue& v = d.values[static_cast<size_t>(vid)];
          if (v.def < 0) continue;
          const DpOp& defOp = d.ops[static_cast<size_t>(v.def)];
          if (defOp.op == Opcode::Ldc) continue;
          if (defOp.stage > o.stage) {
            o.stage = defOp.stage;
            changed = true;
          }
        }
      }
    }
    int maxStage = 0;
    for (const auto& o : d.ops) maxStage = std::max(maxStage, o.stage);
    d.stageCount = maxStage + 1;
    for (size_t fi = 0; fi < d.feedbacks.size(); ++fi) {
      d.feedbacks[fi].stage = std::max(0, coneStage[fi]);
    }
    // Recompute within-stage path delays with the final stages.
    for (auto& o : d.ops) o.pathDelayNs = 0;
    for (int oi : order) {
      DpOp& o = d.ops[static_cast<size_t>(oi)];
      double in = 0;
      for (int vid : o.operands) {
        const DpValue& v = d.values[static_cast<size_t>(vid)];
        if (v.def < 0) continue;
        const DpOp& defOp = d.ops[static_cast<size_t>(v.def)];
        if (defOp.op == Opcode::Ldc) continue;
        if (defOp.stage == o.stage) in = std::max(in, defOp.pathDelayNs);
      }
      o.pathDelayNs = in + delay[static_cast<size_t>(oi)];
    }
  }

  // Output stages.
  for (size_t p = 0; p < d.outputs.size(); ++p) {
    const DpValue& v = d.values[static_cast<size_t>(d.outputs[p].value)];
    d.outputStage[p] = v.def >= 0 ? d.ops[static_cast<size_t>(v.def)].stage : 0;
  }
}

void recomputePipelineStats(DataPath& d) {
  d.pipelineRegisterBits = 0;
  d.balanceRegisterBits = 0;
  // Register bits for values crossing stage boundaries.
  const int finalStage = d.stageCount - 1;
  std::vector<int> lastUse(d.values.size(), -1);
  for (const auto& o : d.ops) {
    for (int vid : o.operands) {
      lastUse[static_cast<size_t>(vid)] = std::max(lastUse[static_cast<size_t>(vid)], o.stage);
    }
  }
  // Outputs are consumed at the final stage (delivered together).
  for (const auto& port : d.outputs) {
    lastUse[static_cast<size_t>(port.value)] = finalStage;
  }
  for (const auto& v : d.values) {
    if (v.def >= 0 && d.ops[static_cast<size_t>(v.def)].op == Opcode::Ldc) continue;
    const int defStage = v.def >= 0 ? d.ops[static_cast<size_t>(v.def)].stage : 0;
    const int last = lastUse[static_cast<size_t>(v.id)];
    if (last > defStage) {
      const int crossings = last - defStage;
      d.pipelineRegisterBits += static_cast<int64_t>(crossings) * v.width;
      d.balanceRegisterBits += static_cast<int64_t>(std::max(0, crossings - 1)) * v.width;
    }
  }
}

bool buildDataPath(const mir::FunctionIR& fn, DataPath& out, DiagEngine& diags,
                   const BuildOptions& options) {
  faultpoint("dp.build");
  Builder b(fn, out, diags, options);
  return b.run();
}

// ---------------------------------------------------------------------------
// Dumps
// ---------------------------------------------------------------------------

std::string DataPath::dump() const {
  std::ostringstream os;
  os << "datapath " << name << ": " << nodes.size() << " nodes, " << ops.size() << " ops, "
     << stageCount << " stages\n";
  for (const auto& n : nodes) {
    os << "  [" << (n.kind == NodeKind::Soft ? "soft" : (n.kind == NodeKind::Mux ? "MUX" : "PIPE"))
       << "] " << n.label << "\n";
    for (int oi : n.ops) {
      const DpOp& o = ops[static_cast<size_t>(oi)];
      os << "    s" << o.stage << ": ";
      if (o.result >= 0) {
        const DpValue& v = values[static_cast<size_t>(o.result)];
        os << (v.name.empty() ? fmt("t%0", v.id) : v.name) << ":" << (v.isSigned ? "s" : "u")
           << v.width << " = ";
      }
      os << mir::opcodeName(o.op);
      if (o.op == mir::Opcode::Ldc) os << ' ' << o.imm;
      if (!o.symbol.empty()) os << " @" << o.symbol;
      for (int vid : o.operands) {
        const DpValue& v = values[static_cast<size_t>(vid)];
        os << ' ' << (v.name.empty() ? fmt("t%0", v.id) : v.name);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string DataPath::dumpStructure() const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (const auto& n : nodes) {
    os << "  n" << n.id << " [label=\"" << n.label << " ("
       << (n.kind == NodeKind::Soft ? "soft" : (n.kind == NodeKind::Mux ? "mux" : "pipe"))
       << ", " << n.ops.size() << " ops)\"];\n";
  }
  // Node-level edges: value produced in node A consumed in node B.
  std::set<std::pair<int, int>> edges;
  for (const auto& o : ops) {
    for (int vid : o.operands) {
      const DpValue& v = values[static_cast<size_t>(vid)];
      if (v.def < 0) continue;
      const int from = ops[static_cast<size_t>(v.def)].node;
      if (from != o.node) edges.insert({from, o.node});
    }
  }
  for (const auto& [a, b] : edges) os << "  n" << a << " -> n" << b << ";\n";
  os << "}\n";
  return os.str();
}

} // namespace roccc::dp
