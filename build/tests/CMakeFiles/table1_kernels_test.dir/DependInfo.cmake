
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/table1_kernels_test.cpp" "tests/CMakeFiles/table1_kernels_test.dir/table1_kernels_test.cpp.o" "gcc" "tests/CMakeFiles/table1_kernels_test.dir/table1_kernels_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roccc/CMakeFiles/roccc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vhdl/CMakeFiles/roccc_vhdl.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/roccc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hlir/CMakeFiles/roccc_hlir.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/roccc_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/roccc_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/roccc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/roccc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/roccc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
