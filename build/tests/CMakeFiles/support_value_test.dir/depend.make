# Empty dependencies file for support_value_test.
# This may be replaced when dependencies are built.
