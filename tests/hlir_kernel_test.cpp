#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/cosim.hpp"
#include "hlir/kernel.hpp"
#include "hlir/transforms.hpp"
#include "interp/interp.hpp"
#include "support/strings.hpp"

namespace roccc::hlir {
namespace {

using ast::Module;

Module build(const std::string& src) {
  DiagEngine diags;
  Module m = ast::parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  EXPECT_TRUE(ast::analyze(m, diags)) << diags.dump();
  return m;
}

KernelInfo extractOk(const Module& m, const std::string& fn) {
  KernelInfo k;
  DiagEngine diags;
  EXPECT_TRUE(extractKernel(m, fn, k, diags)) << diags.dump();
  return k;
}

void expectExtractError(const std::string& src, const std::string& fn, const std::string& needle) {
  Module m = build(src);
  KernelInfo k;
  DiagEngine diags;
  ASSERT_FALSE(extractKernel(m, fn, k, diags)) << "expected failure mentioning " << needle;
  EXPECT_NE(diags.dump().find(needle), std::string::npos) << diags.dump();
}

const char* kFirSrc = R"(
  void fir(const int16 A[21], int16 C[17]) {
    int i;
    for (i = 0; i < 17; i = i + 1) {
      C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
    }
  }
)";

TEST(Affine, Forms) {
  Module m = build("void k(const int8 A[64], int8 C[8]) { int i; for (i=0;i<8;i++) { C[i] = A[2*i+3] + A[i<<2]; } }");
  // Direct structural checks on analyzeAffine are in the extraction paths;
  // here check coefficients via extraction failure modes elsewhere. Parse
  // the index expressions manually:
  const auto& f = m.functions[0];
  std::vector<const ast::ArrayRefExpr*> refs;
  ast::forEachExprInStmt(*f.body, [&](const ast::Expr& e) {
    if (e.kind == ast::ExprKind::ArrayRef && static_cast<const ast::ArrayRefExpr&>(e).name == "A")
      refs.push_back(static_cast<const ast::ArrayRefExpr*>(&e));
  });
  ASSERT_EQ(refs.size(), 2u);
  const AffineForm f1 = analyzeAffine(*refs[0]->indices[0]);
  ASSERT_TRUE(f1.valid);
  ASSERT_EQ(f1.terms.size(), 1u);
  EXPECT_EQ(f1.terms[0].second, 2);
  EXPECT_EQ(f1.constant, 3);
  const AffineForm f2 = analyzeAffine(*refs[1]->indices[0]);
  ASSERT_TRUE(f2.valid);
  EXPECT_EQ(f2.terms[0].second, 4); // i<<2
  EXPECT_EQ(f2.constant, 0);
}

TEST(Affine, RejectsNonAffine) {
  Module m = build("void k(const int8 A[64], int j, int8* o) { *o = A[j*j]; }");
  std::vector<const ast::ArrayRefExpr*> refs;
  ast::forEachExprInStmt(*m.functions[0].body, [&](const ast::Expr& e) {
    if (e.kind == ast::ExprKind::ArrayRef) refs.push_back(static_cast<const ast::ArrayRefExpr*>(&e));
  });
  EXPECT_FALSE(analyzeAffine(*refs[0]->indices[0]).valid);
}

TEST(Extract, FirWindowGeometry) {
  Module m = build(kFirSrc);
  KernelInfo k = extractOk(m, "fir");
  ASSERT_EQ(k.loops.size(), 1u);
  EXPECT_EQ(k.loops[0].begin, 0);
  EXPECT_EQ(k.loops[0].end, 17);
  EXPECT_EQ(k.loops[0].step, 1);
  ASSERT_EQ(k.inputs.size(), 1u);
  const Stream& in = k.inputs[0];
  EXPECT_EQ(in.arrayName, "A");
  EXPECT_EQ(in.accessCount(), 5);
  EXPECT_EQ(in.extent(0), 5); // 5-tap window
  EXPECT_EQ(in.minOffset(0), 0);
  EXPECT_EQ(in.dimMap[0].coeff, 1);
  EXPECT_EQ(in.strideForLoop(0, k.loops, 0), 1); // window slides by 1
  // Paper Fig 3(b): scalars A0..A4.
  EXPECT_EQ(in.scalarNames[0], "A0");
  EXPECT_EQ(in.scalarNames[4], "A4");
  ASSERT_EQ(k.outputs.size(), 1u);
  EXPECT_EQ(k.outputs[0].accessCount(), 1);
  EXPECT_TRUE(k.feedbacks.empty());
  // dp function has 5 inputs + 1 output param (Fig 3 (c)).
  const ast::Function& dp = k.dpFunction();
  ASSERT_EQ(dp.params.size(), 6u);
  EXPECT_EQ(dp.params[0].name, "A0");
  EXPECT_EQ(dp.params[5].mode, ast::ParamMode::Out);
}

TEST(Extract, FirCosimMatchesInterpreter) {
  Module m = build(kFirSrc);
  KernelInfo k = extractOk(m, "fir");
  interp::KernelIO in;
  for (int i = 0; i < 21; ++i) in.arrays["A"].push_back((i * 97) % 119 - 60);
  const auto hw = simulateStreams(k, in);
  const auto sw = interp::runKernel(m, "fir", in);
  EXPECT_EQ(hw.arrays.at("C"), sw.arrays.at("C"));
}

TEST(Extract, AccumulatorFeedbackDetected) {
  // Paper Fig 4.
  Module m = build(R"(
    int sum = 0;
    void acc(const int32 A[32], int32* out) {
      int i;
      for (i = 0; i < 32; i++) {
        sum = sum + A[i];
      }
      *out = sum;
    }
  )");
  KernelInfo k = extractOk(m, "acc");
  ASSERT_EQ(k.feedbacks.size(), 1u);
  EXPECT_EQ(k.feedbacks[0].name, "sum");
  EXPECT_EQ(k.feedbacks[0].initial, 0);
  EXPECT_EQ(k.feedbacks[0].exportedTo, "out");
  // dp body uses the macros (Fig 4 (c)).
  const std::string dp = ast::printFunction(k.dpFunction());
  EXPECT_NE(dp.find("ROCCC_load_prev(sum)"), std::string::npos) << dp;
  EXPECT_NE(dp.find("ROCCC_store2next(sum, "), std::string::npos) << dp;
  // Cosim equals interpreter.
  interp::KernelIO in;
  int64_t expect = 0;
  for (int i = 0; i < 32; ++i) {
    in.arrays["A"].push_back(7 * i - 50);
    expect += 7 * i - 50;
  }
  EXPECT_EQ(simulateStreams(k, in).scalars.at("out"), expect);
}

TEST(Extract, PreLoopInitialValueRespected) {
  Module m = build(R"(
    void acc(const int32 A[8], int32* out) {
      int i;
      int s;
      s = 100;
      for (i = 0; i < 8; i++) { s = s + A[i]; }
      *out = s;
    }
  )");
  KernelInfo k = extractOk(m, "acc");
  ASSERT_EQ(k.feedbacks.size(), 1u);
  EXPECT_EQ(k.feedbacks[0].initial, 100);
  interp::KernelIO in;
  for (int i = 0; i < 8; ++i) in.arrays["A"].push_back(1);
  EXPECT_EQ(simulateStreams(k, in).scalars.at("out"), 108);
}

TEST(Extract, MulAccConditionalFeedback) {
  // The paper's mul_acc: 12-bit operand pair with an nd (new data) control
  // input expressed as if-else (section 5 discussion).
  Module m = build(R"(
    int32 acc = 0;
    void mul_acc(const int12 A[16], const int12 B[16], uint1 nd, int32* out) {
      int i;
      for (i = 0; i < 16; i++) {
        if (nd) {
          acc = acc + A[i] * B[i];
        }
      }
      *out = acc;
    }
  )");
  KernelInfo k = extractOk(m, "mul_acc");
  ASSERT_EQ(k.inputs.size(), 2u);
  ASSERT_EQ(k.feedbacks.size(), 1u);
  ASSERT_EQ(k.scalarInputs.size(), 1u);
  EXPECT_EQ(k.scalarInputs[0].name, "nd");
  for (int nd = 0; nd <= 1; ++nd) {
    interp::KernelIO in;
    in.scalars["nd"] = nd;
    for (int i = 0; i < 16; ++i) {
      in.arrays["A"].push_back(i - 8);
      in.arrays["B"].push_back(3 * i);
    }
    const auto hw = simulateStreams(k, in);
    const auto sw = interp::runKernel(m, "mul_acc", in);
    EXPECT_EQ(hw.scalars.at("out"), sw.scalars.at("out")) << "nd=" << nd;
  }
}

TEST(Extract, DctStyleMultiOutputWindow) {
  // 8 outputs per iteration, stride 8 (the paper's DCT throughput shape).
  Module m = build(R"(
    void dct_like(const int8 X[64], int19 Y[64]) {
      int i;
      for (i = 0; i < 8; i++) {
        Y[8*i]   = X[8*i] + X[8*i+7];
        Y[8*i+1] = X[8*i+1] + X[8*i+6];
        Y[8*i+2] = X[8*i+2] + X[8*i+5];
        Y[8*i+3] = X[8*i+3] + X[8*i+4];
        Y[8*i+4] = X[8*i] - X[8*i+7];
        Y[8*i+5] = X[8*i+1] - X[8*i+6];
        Y[8*i+6] = X[8*i+2] - X[8*i+5];
        Y[8*i+7] = X[8*i+3] - X[8*i+4];
      }
    }
  )");
  KernelInfo k = extractOk(m, "dct_like");
  ASSERT_EQ(k.inputs.size(), 1u);
  EXPECT_EQ(k.inputs[0].accessCount(), 8);
  EXPECT_EQ(k.inputs[0].extent(0), 8);
  EXPECT_EQ(k.inputs[0].strideForLoop(0, k.loops, 0), 8); // non-overlapping windows
  ASSERT_EQ(k.outputs.size(), 1u);
  EXPECT_EQ(k.outputs[0].accessCount(), 8);
  interp::KernelIO in;
  for (int i = 0; i < 64; ++i) in.arrays["X"].push_back((i * 13) % 100 - 50);
  EXPECT_EQ(simulateStreams(k, in).arrays.at("Y"), interp::runKernel(m, "dct_like", in).arrays.at("Y"));
}

TEST(Extract, TwoDimensionalWindow) {
  // A (5,3)-style 2-D stencil: 2x3 window over a 2-D image.
  Module m = build(R"(
    void stencil(const int16 X[6][8], int16 Y[5][6]) {
      int i;
      int j;
      for (i = 0; i < 5; i++) {
        for (j = 0; j < 6; j++) {
          Y[i][j] = X[i][j] + X[i][j+1] + X[i][j+2]
                  + X[i+1][j] + X[i+1][j+1] + X[i+1][j+2];
        }
      }
    }
  )");
  KernelInfo k = extractOk(m, "stencil");
  ASSERT_EQ(k.loops.size(), 2u);
  ASSERT_EQ(k.inputs.size(), 1u);
  const Stream& in = k.inputs[0];
  EXPECT_EQ(in.accessCount(), 6);
  EXPECT_EQ(in.extent(0), 2);
  EXPECT_EQ(in.extent(1), 3);
  EXPECT_EQ(in.dimMap[0].loop, 0);
  EXPECT_EQ(in.dimMap[1].loop, 1);
  interp::KernelIO io;
  for (int i = 0; i < 48; ++i) io.arrays["X"].push_back(i * 5 - 100);
  EXPECT_EQ(simulateStreams(k, io).arrays.at("Y"), interp::runKernel(m, "stencil", io).arrays.at("Y"));
}

TEST(Extract, InductionValueUse) {
  Module m = build(R"(
    void ramp(const int16 A[8], int16 C[8]) {
      int i;
      for (i = 0; i < 8; i++) { C[i] = A[i] * i; }
    }
  )");
  KernelInfo k = extractOk(m, "ramp");
  ASSERT_EQ(k.scalarInputs.size(), 1u);
  EXPECT_TRUE(k.scalarInputs[0].isInduction);
  EXPECT_EQ(k.scalarInputs[0].name, "i_val");
  interp::KernelIO io;
  for (int i = 0; i < 8; ++i) io.arrays["A"].push_back(i + 1);
  EXPECT_EQ(simulateStreams(k, io).arrays.at("C"), interp::runKernel(m, "ramp", io).arrays.at("C"));
}

TEST(Extract, LookupTableInKernel) {
  Module m = build(R"(
    const int16 GAMMA[16] = {0,1,4,9,16,25,36,49,64,81,100,121,144,169,196,225};
    void apply(const uint4 A[8], int16 C[8]) {
      int i;
      for (i = 0; i < 8; i++) { C[i] = GAMMA[A[i]]; }
    }
  )");
  KernelInfo k = extractOk(m, "apply");
  // GAMMA is a ROM, not a stream.
  EXPECT_EQ(k.inputs.size(), 1u);
  EXPECT_EQ(k.inputs[0].arrayName, "A");
  EXPECT_NE(k.dpModule.findGlobal("GAMMA"), nullptr);
  const std::string dp = ast::printFunction(k.dpFunction());
  EXPECT_NE(dp.find("ROCCC_lookup(GAMMA"), std::string::npos) << dp;
  interp::KernelIO io;
  for (int i = 0; i < 8; ++i) io.arrays["A"].push_back(15 - i);
  EXPECT_EQ(simulateStreams(k, io).arrays.at("C"), interp::runKernel(m, "apply", io).arrays.at("C"));
}

TEST(Extract, BackwardWindowOffsets) {
  Module m = build(R"(
    void diff(const int16 A[10], int16 C[10]) {
      int i;
      for (i = 1; i < 9; i++) { C[i] = A[i+1] - A[i-1]; }
    }
  )");
  KernelInfo k = extractOk(m, "diff");
  EXPECT_EQ(k.inputs[0].minOffset(0), -1);
  EXPECT_EQ(k.inputs[0].extent(0), 3);
  interp::KernelIO io;
  for (int i = 0; i < 10; ++i) io.arrays["A"].push_back(i * i);
  const auto hw = simulateStreams(k, io);
  const auto sw = interp::runKernel(m, "diff", io);
  for (int i = 1; i < 9; ++i) EXPECT_EQ(hw.arrays.at("C")[i], sw.arrays.at("C")[i]);
}

TEST(Extract, ScalarReplacedTextMentionsWindow) {
  Module m = build(kFirSrc);
  KernelInfo k = extractOk(m, "fir");
  EXPECT_NE(k.scalarReplacedText.find("A0 = A[i];"), std::string::npos) << k.scalarReplacedText;
  EXPECT_NE(k.scalarReplacedText.find("A4 = A[i+4];"), std::string::npos) << k.scalarReplacedText;
}

// --- rejection paths ----------------------------------------------------------

TEST(ExtractErrors, NoLoop) {
  expectExtractError("void k(int a, int* o) { *o = a; }", "k", "contains no loop");
}

TEST(ExtractErrors, NonConstantBounds) {
  expectExtractError(
      "void k(const int8 A[64], int n, int8 C[64]) { int i; for (i = 0; i < n; i++) { C[i] = A[i]; } }",
      "k", "compile-time constants");
}

TEST(ExtractErrors, NonAffineIndex) {
  expectExtractError(
      "void k(const int8 A[64], int8 C[8]) { int i; for (i = 0; i < 8; i++) { C[i] = A[i*i]; } }",
      "k", "not affine");
}

TEST(ExtractErrors, GatherThroughDataIndex) {
  expectExtractError(
      R"(void k(const uint4 A[8], const int8 T[16], int8 C[8]) {
           int i;
           for (i = 0; i < 8; i++) { C[i] = T[A[i]]; }
         })",
      "k", "not affine");
}

TEST(ExtractErrors, WindowOverrun) {
  expectExtractError(
      "void k(const int8 A[16], int8 C[16]) { int i; for (i = 0; i < 16; i++) { C[i] = A[i+1]; } }",
      "k", "overruns");
}

TEST(ExtractErrors, TooDeepNest) {
  expectExtractError(
      R"(void k(const int8 A[2][2], int8 C[2][2]) {
           int i; int j; int l;
           for (i = 0; i < 2; i++) {
             for (j = 0; j < 2; j++) {
               for (l = 0; l < 2; l++) {
                 C[i][j] = A[i][j];
               }
             }
           }
         })",
      "k", "deeper than 2");
}

TEST(ExtractErrors, TwoTopLevelLoops) {
  expectExtractError(
      R"(void k(const int8 A[4], int8 C[4], int8 D[4]) {
           int i;
           for (i = 0; i < 4; i++) { C[i] = A[i]; }
           for (i = 0; i < 4; i++) { D[i] = A[i]; }
         })",
      "k", "one top-level loop");
}

// Property sweep: random-ish kernels with varying window/stride cosim-match.
struct GeomParam {
  int taps;
  int stride;
};

class WindowGeometrySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowGeometrySweep, CosimMatchesInterp) {
  const int taps = std::get<0>(GetParam());
  const int stride = std::get<1>(GetParam());
  const int iters = 8;
  const int inLen = stride * (iters - 1) + taps;
  std::string body;
  for (int t = 0; t < taps; ++t) {
    if (t) body += " + ";
    body += roccc::fmt("%0*A[%1*i+%2]", t + 1, stride, t);
  }
  const std::string src = roccc::fmt(R"(
    void k(const int16 A[%0], int32 C[%1]) {
      int i;
      for (i = 0; i < %2; i++) { C[i] = %3; }
    }
  )", inLen, iters, iters, body);
  Module m = build(src);
  KernelInfo k = extractOk(m, "k");
  EXPECT_EQ(k.inputs[0].extent(0), taps);
  EXPECT_EQ(k.inputs[0].strideForLoop(0, k.loops, 0), stride);
  interp::KernelIO io;
  for (int i = 0; i < inLen; ++i) io.arrays["A"].push_back((i * 31) % 200 - 100);
  EXPECT_EQ(simulateStreams(k, io).arrays.at("C"), interp::runKernel(m, "k", io).arrays.at("C"));
}

INSTANTIATE_TEST_SUITE_P(Geometries, WindowGeometrySweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values(1, 2, 4, 8)));

// Unroll-then-extract: the DCT path (unroll widens the window).
TEST(Extract, UnrolledFirWidensWindow) {
  Module m = build(R"(
    void fir(const int16 A[36], int16 C[32]) {
      int i;
      for (i = 0; i < 32; i++) {
        C[i] = A[i] + A[i+1] + A[i+2] + A[i+3] + A[i+4];
      }
    }
  )");
  DiagEngine diags;
  ASSERT_TRUE(unrollInnerLoop(m, m.functions[0], 4, diags)) << diags.dump();
  KernelInfo k = extractOk(m, "fir");
  EXPECT_EQ(k.inputs[0].extent(0), 8);  // 5 + 4 - 1
  EXPECT_EQ(k.inputs[0].strideForLoop(0, k.loops, 0), 4);
  EXPECT_EQ(k.outputs[0].accessCount(), 4); // 4 outputs per iteration
  interp::KernelIO io;
  for (int i = 0; i < 36; ++i) io.arrays["A"].push_back(i);
  Module ref = build(R"(
    void fir(const int16 A[36], int16 C[32]) {
      int i;
      for (i = 0; i < 32; i++) {
        C[i] = A[i] + A[i+1] + A[i+2] + A[i+3] + A[i+4];
      }
    }
  )");
  EXPECT_EQ(simulateStreams(k, io).arrays.at("C"), interp::runKernel(ref, "fir", io).arrays.at("C"));
}

} // namespace
} // namespace roccc::hlir
