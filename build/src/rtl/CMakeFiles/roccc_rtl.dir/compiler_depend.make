# Empty compiler generated dependencies file for roccc_rtl.
# This may be replaced when dependencies are built.
