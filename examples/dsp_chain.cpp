// Signal-processing scenario: a two-kernel DSP chain — numerically
// controlled oscillator (via the cos lookup-table IP) mixing an input
// band to baseband, then a 5-tap low-pass FIR — each compiled to its own
// engine and composed through their BRAM streams, exactly the paper's
// execution model (Fig 2) chained twice.
//
//   $ ./dsp_chain
#include <cmath>
#include <cstdio>

#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

namespace {

const char* kMixer = R"(
void mix(const int12 IN[256], const uint10 PHASE[256], int16 BB[256]) {
  int i;
  for (i = 0; i < 256; i++) {
    BB[i] = (IN[i] * ROCCC_cos(PHASE[i])) >> 12;
  }
}
)";

const char* kLowpass = R"(
void lowpass(const int16 BB[260], int16 OUT[256]) {
  int i;
  for (i = 0; i < 256; i++) {
    OUT[i] = (BB[i] + 3*BB[i+1] + 4*BB[i+2] + 3*BB[i+3] + BB[i+4]) >> 4;
  }
}
)";

} // namespace

int main() {
  using namespace roccc;

  // Stimulus: a 2 kHz-ish tone riding on a carrier, 12-bit samples.
  interp::KernelIO mixIo;
  for (int n = 0; n < 256; ++n) {
    const double carrier = std::cos(2 * M_PI * n * 96.0 / 1024.0);
    const double tone = std::cos(2 * M_PI * n * 5.0 / 256.0);
    mixIo.arrays["IN"].push_back(static_cast<int64_t>(1500.0 * tone * carrier));
    mixIo.arrays["PHASE"].push_back((n * 96) % 1024); // NCO phase ramp
  }

  Compiler compiler;
  const auto mixer = compiler.compileSource(kMixer);
  if (!mixer.ok) {
    std::fprintf(stderr, "mixer: %s\n", mixer.diags.dump().c_str());
    return 1;
  }
  const auto mixCosim = cosimulate(mixer, kMixer, mixIo);
  if (!mixCosim.match) {
    std::fprintf(stderr, "mixer cosim mismatch: %s\n", mixCosim.mismatch.c_str());
    return 1;
  }

  // Stage 2 consumes stage 1's output BRAM (pad the window edges).
  interp::KernelIO lpIo;
  auto& bb = lpIo.arrays["BB"];
  bb = mixCosim.hardware.arrays.at("BB");
  bb.resize(260, 0);
  const auto lp = compiler.compileSource(kLowpass);
  if (!lp.ok) {
    std::fprintf(stderr, "lowpass: %s\n", lp.diags.dump().c_str());
    return 1;
  }
  const auto lpCosim = cosimulate(lp, kLowpass, lpIo);
  if (!lpCosim.match) {
    std::fprintf(stderr, "lowpass cosim mismatch: %s\n", lpCosim.mismatch.c_str());
    return 1;
  }

  std::printf("DSP chain: NCO mixer (cos LUT IP) -> 5-tap low-pass FIR\n\n");
  for (const auto* stage : {&mixer, &lp}) {
    const auto rep = synth::estimate(stage->module);
    std::printf("  %-8s: %d stages, %s\n", stage->kernel.kernelName.c_str(),
                stage->datapath.stageCount, rep.summary().c_str());
  }
  std::printf("\n  mixer  : %lld cycles / 256 samples\n",
              static_cast<long long>(mixCosim.stats.cycles));
  std::printf("  lowpass: %lld cycles / 256 samples\n",
              static_cast<long long>(lpCosim.stats.cycles));

  // Show the recovered tone (crude ASCII plot of every 8th sample).
  std::printf("\n  recovered baseband (every 8th sample):\n");
  const auto& out = lpCosim.hardware.arrays.at("OUT");
  for (int n = 8; n < 256; n += 8) {
    const int64_t v = out[static_cast<size_t>(n)];
    const int col = static_cast<int>(32 + v / 24);
    std::printf("  %4d | %*s*\n", n, col < 0 ? 0 : col, "");
  }
  std::printf("\n  hardware == software for both stages.\n");
  return 0;
}
