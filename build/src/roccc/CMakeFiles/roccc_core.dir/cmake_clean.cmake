file(REMOVE_RECURSE
  "CMakeFiles/roccc_core.dir/compiler.cpp.o"
  "CMakeFiles/roccc_core.dir/compiler.cpp.o.d"
  "libroccc_core.a"
  "libroccc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
