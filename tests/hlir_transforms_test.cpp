#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/transforms.hpp"
#include "interp/interp.hpp"

namespace roccc::hlir {
namespace {

using ast::Module;

Module build(const std::string& src) {
  DiagEngine diags;
  Module m = ast::parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  EXPECT_TRUE(ast::analyze(m, diags)) << diags.dump();
  return m;
}

int countLoops(const ast::Function& f) {
  int n = 0;
  ast::forEachStmt(*f.body, [&](const ast::Stmt& s) {
    if (s.kind == ast::StmtKind::For) ++n;
  });
  return n;
}

TEST(ConstantFold, FoldsArithmeticAndPrunesIf) {
  Module m = build(R"(
    void k(int a, int* o) {
      int x;
      x = 3 * 4 + 2;
      if (1 < 2) { x = x + a; } else { x = 0; }
      *o = x + (5 - 5);
    }
  )");
  DiagEngine diags;
  const int folds = constantFold(m, diags);
  EXPECT_GE(folds, 3);
  const std::string p = ast::printFunction(m.functions[0]);
  EXPECT_NE(p.find("x = 14;"), std::string::npos) << p;
  EXPECT_EQ(p.find("if"), std::string::npos) << p; // branch pruned
  // Behavior preserved.
  interp::KernelIO in;
  in.scalars["a"] = 10;
  EXPECT_EQ(interp::runKernel(m, "k", in).scalars["o"], 24);
}

TEST(ConstantFold, KeepsDynamicConditions) {
  Module m = build("void k(int a, int* o) { if (a < 2) { *o = 1; } else { *o = 2; } }");
  DiagEngine diags;
  constantFold(m, diags);
  EXPECT_NE(ast::printFunction(m.functions[0]).find("if"), std::string::npos);
}

TEST(FullUnroll, EliminatesLoopAndPreservesSemantics) {
  const char* src = R"(
    void k(const int32 A[8], int32* o) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < 8; i++) { s = s + A[i] * i; }
      *o = s;
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  EXPECT_EQ(fullyUnrollLoops(m, m.functions[0], diags), 1);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  EXPECT_EQ(countLoops(m.functions[0]), 0);
  interp::KernelIO in;
  for (int i = 0; i < 8; ++i) in.arrays["A"].push_back(3 * i - 5);
  EXPECT_EQ(interp::runKernel(m, "k", in).scalars["o"], interp::runKernel(ref, "k", in).scalars["o"]);
}

TEST(FullUnroll, UnrollsNestedInnerFirst) {
  Module m = build(R"(
    void k(const int32 A[4][4], int32* o) {
      int i;
      int j;
      int s;
      s = 0;
      for (i = 0; i < 4; i++) {
        for (j = 0; j < 4; j++) { s = s + A[i][j]; }
      }
      *o = s;
    }
  )");
  DiagEngine diags;
  EXPECT_EQ(fullyUnrollLoops(m, m.functions[0], diags), 2);
  EXPECT_EQ(countLoops(m.functions[0]), 0);
  interp::KernelIO in;
  int64_t expect = 0;
  for (int i = 0; i < 16; ++i) {
    in.arrays["A"].push_back(i);
    expect += i;
  }
  EXPECT_EQ(interp::runKernel(m, "k", in).scalars["o"], expect);
}

TEST(FullUnroll, RespectsMaxTrip) {
  Module m = build(R"(
    void k(const int32 A[100], int32* o) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < 100; i++) { s = s + A[i]; }
      *o = s;
    }
  )");
  DiagEngine diags;
  EXPECT_EQ(fullyUnrollLoops(m, m.functions[0], diags, /*maxTrip=*/50), 0);
  EXPECT_EQ(countLoops(m.functions[0]), 1);
}

TEST(PartialUnroll, WidensBodyAndPreservesSemantics) {
  const char* src = R"(
    void fir(const int16 A[20], int16 C[16]) {
      int i;
      for (i = 0; i < 16; i++) {
        C[i] = A[i] + A[i+1] * 2 + A[i+4];
      }
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  ASSERT_TRUE(unrollInnerLoop(m, m.functions[0], 4, diags)) << diags.dump();
  // Step is now 4.
  ast::forEachStmt(*m.functions[0].body, [](const ast::Stmt& s) {
    if (s.kind == ast::StmtKind::For) EXPECT_EQ(static_cast<const ast::ForStmt&>(s).step, 4);
  });
  interp::KernelIO in;
  for (int i = 0; i < 20; ++i) in.arrays["A"].push_back(i * 3 + 1);
  EXPECT_EQ(interp::runKernel(m, "fir", in).arrays["C"], interp::runKernel(ref, "fir", in).arrays["C"]);
}

TEST(PartialUnroll, RejectsNonDividingFactor) {
  Module m = build(R"(
    void k(const int32 A[10], int32 C[10]) {
      int i;
      for (i = 0; i < 10; i++) { C[i] = A[i]; }
    }
  )");
  DiagEngine diags;
  EXPECT_FALSE(unrollInnerLoop(m, m.functions[0], 3, diags));
  EXPECT_TRUE(diags.hasErrors());
}

TEST(StripMine, CreatesBlockedNestPreservingSemantics) {
  const char* src = R"(
    void k(const int32 A[32], int32 C[32]) {
      int i;
      for (i = 0; i < 32; i++) { C[i] = A[i] * 2 + 1; }
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  ASSERT_TRUE(stripMineInnerLoop(m, m.functions[0], 8, diags)) << diags.dump();
  EXPECT_EQ(countLoops(m.functions[0]), 2);
  interp::KernelIO in;
  for (int i = 0; i < 32; ++i) in.arrays["A"].push_back(i - 16);
  EXPECT_EQ(interp::runKernel(m, "k", in).arrays["C"], interp::runKernel(ref, "k", in).arrays["C"]);
}

TEST(Fusion, FusesIndependentLoops) {
  const char* src = R"(
    void k(const int32 A[16], int32 C[16], int32 D[16]) {
      int i;
      for (i = 0; i < 16; i++) { C[i] = A[i] + 1; }
      for (i = 0; i < 16; i++) { D[i] = A[i] * 2; }
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  EXPECT_EQ(fuseAdjacentLoops(m, m.functions[0], diags), 1);
  EXPECT_EQ(countLoops(m.functions[0]), 1);
  interp::KernelIO in;
  for (int i = 0; i < 16; ++i) in.arrays["A"].push_back(i * i);
  const auto a = interp::runKernel(m, "k", in);
  const auto b = interp::runKernel(ref, "k", in);
  EXPECT_EQ(a.arrays.at("C"), b.arrays.at("C"));
  EXPECT_EQ(a.arrays.at("D"), b.arrays.at("D"));
}

TEST(Fusion, RefusesScalarDependence) {
  Module m = build(R"(
    int s = 0;
    void k(const int32 A[8], int32 C[8]) {
      int i;
      for (i = 0; i < 8; i++) { s = s + A[i]; }
      for (i = 0; i < 8; i++) { C[i] = s; }
    }
  )");
  DiagEngine diags;
  EXPECT_EQ(fuseAdjacentLoops(m, m.functions[0], diags), 0);
}

TEST(Fusion, RefusesDifferentHeaders) {
  Module m = build(R"(
    void k(const int32 A[16], int32 C[16], int32 D[8]) {
      int i;
      for (i = 0; i < 16; i++) { C[i] = A[i]; }
      for (i = 0; i < 8; i++) { D[i] = A[i]; }
    }
  )");
  DiagEngine diags;
  EXPECT_EQ(fuseAdjacentLoops(m, m.functions[0], diags), 0);
}

TEST(Inline, ExpandsCallPreservingSemantics) {
  const char* src = R"(
    void square(int x, int* r) { *r = x * x; }
    void k(const int32 A[8], int32 C[8]) {
      int i;
      int t;
      for (i = 0; i < 8; i++) {
        t = 0;
        square(A[i], t);
        C[i] = t + 1;
      }
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  EXPECT_EQ(inlineCalls(m, diags), 1);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  // No remaining calls to 'square'.
  bool hasCall = false;
  ast::forEachExprInStmt(*m.functions[1].body, [&](const ast::Expr& e) {
    if (e.kind == ast::ExprKind::Call &&
        static_cast<const ast::CallExpr&>(e).callee == "square")
      hasCall = true;
  });
  EXPECT_FALSE(hasCall);
  interp::KernelIO in;
  for (int i = 0; i < 8; ++i) in.arrays["A"].push_back(i - 3);
  EXPECT_EQ(interp::runKernel(m, "k", in).arrays["C"], interp::runKernel(ref, "k", in).arrays["C"]);
}

TEST(Inline, HandlesNestedCalls) {
  Module m = build(R"(
    void add1(int x, int* r) { *r = x + 1; }
    void add2(int x, int* r) { int t; t = 0; add1(x, t); add1(t, r); }
    void k(int a, int* o) { int t; t = 0; add2(a, t); *o = t; }
  )");
  DiagEngine diags;
  EXPECT_GE(inlineCalls(m, diags), 3);
  interp::KernelIO in;
  in.scalars["a"] = 5;
  EXPECT_EQ(interp::runKernel(m, "k", in).scalars["o"], 7);
}

TEST(LutConversion, ConvertsPureUnaryFunction) {
  // "Function calls will either be inlined or whenever feasible made into a
  // lookup table" (section 2).
  const char* src = R"(
    void cube_low(uint4 x, int16* r) { *r = x * x * x; }
    void k(const uint4 A[8], int16 C[8]) {
      int i;
      int16 t;
      for (i = 0; i < 8; i++) {
        t = 0;
        cube_low(A[i], t);
        C[i] = t;
      }
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  EXPECT_EQ(convertCallsToLookupTables(m, diags), 1);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  // A 16-entry table exists now.
  const ast::VarDecl* table = m.findGlobal("cube_low_lut");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->init.size(), 16u);
  EXPECT_EQ(table->init[3], 27);
  interp::KernelIO in;
  for (int i = 0; i < 8; ++i) in.arrays["A"].push_back(i);
  EXPECT_EQ(interp::runKernel(m, "k", in).arrays["C"], interp::runKernel(ref, "k", in).arrays["C"]);
}

TEST(LutConversion, RespectsWidthLimit) {
  Module m = build(R"(
    void f(uint16 x, int16* r) { *r = x + 1; }
    void k(uint16 a, int16* o) { int16 t; t = 0; f(a, t); *o = t; }
  )");
  DiagEngine diags;
  EXPECT_EQ(convertCallsToLookupTables(m, diags, /*maxIndexBits=*/10), 0);
}

TEST(LutConversion, SignedInputIndexedByRawBits) {
  Module m = build(R"(
    void f(int4 x, int16* r) { *r = x * 3; }
    void k(int4 a, int16* o) { int16 t; t = 0; f(a, t); *o = t; }
  )");
  DiagEngine diags;
  EXPECT_EQ(convertCallsToLookupTables(m, diags), 1);
  interp::KernelIO in;
  in.scalars["a"] = -5;
  EXPECT_EQ(interp::runKernel(m, "k", in).scalars["o"], -15);
  in.scalars["a"] = 7;
  EXPECT_EQ(interp::runKernel(m, "k", in).scalars["o"], 21);
}

TEST(AreaEstimate, CountsOperators) {
  Module m = build(R"(
    void k(int a, int b, int* o) {
      *o = a * b + a * a - (b & 15) + (a < b);
    }
  )");
  const AreaEstimate est = estimateArea(m.functions[0]);
  EXPECT_EQ(est.multipliers, 2);
  EXPECT_EQ(est.adders, 3);
  EXPECT_EQ(est.comparators, 1);
  EXPECT_EQ(est.logicOps, 1);
  EXPECT_GT(est.estimatedSlices(), 0);
}

TEST(AreaEstimate, UnrollFactorScalesWithBudget) {
  Module m = build(R"(
    void k(const int32 A[64], int32 C[64]) {
      int i;
      for (i = 0; i < 64; i++) { C[i] = A[i] * 3 + 1; }
    }
  )");
  const int small = chooseUnrollFactor(m.functions[0], 64, 700);
  const int big = chooseUnrollFactor(m.functions[0], 64, 40000);
  EXPECT_LT(small, big);
  EXPECT_EQ(64 % small, 0);
  EXPECT_EQ(64 % big, 0);
}

// Property sweep: partial unroll by every dividing factor preserves results.
class UnrollSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnrollSweep, SemanticsPreserved) {
  const int factor = GetParam();
  const char* src = R"(
    void fir(const int16 A[36], int16 C[32]) {
      int i;
      for (i = 0; i < 32; i++) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
      }
    }
  )";
  Module ref = build(src);
  Module m = build(src);
  DiagEngine diags;
  ASSERT_TRUE(unrollInnerLoop(m, m.functions[0], factor, diags)) << diags.dump();
  interp::KernelIO in;
  for (int i = 0; i < 36; ++i) in.arrays["A"].push_back((i * 37) % 251 - 125);
  EXPECT_EQ(interp::runKernel(m, "fir", in).arrays["C"], interp::runKernel(ref, "fir", in).arrays["C"]);
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollSweep, ::testing::Values(2, 4, 8, 16, 32));

} // namespace
} // namespace roccc::hlir
