file(REMOVE_RECURSE
  "CMakeFiles/vhdl_extras_test.dir/vhdl_extras_test.cpp.o"
  "CMakeFiles/vhdl_extras_test.dir/vhdl_extras_test.cpp.o.d"
  "vhdl_extras_test"
  "vhdl_extras_test.pdb"
  "vhdl_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
