#include <gtest/gtest.h>

#include "support/range.hpp"
#include "support/value.hpp"

namespace roccc {
namespace {

TEST(ScalarType, MinMax) {
  EXPECT_EQ(ScalarType::make(8, true).minValue(), -128);
  EXPECT_EQ(ScalarType::make(8, true).maxValue(), 127);
  EXPECT_EQ(ScalarType::make(8, false).minValue(), 0);
  EXPECT_EQ(ScalarType::make(8, false).maxValue(), 255);
  EXPECT_EQ(ScalarType::make(1, false).maxValue(), 1);
  EXPECT_EQ(ScalarType::intTy().minValue(), INT32_MIN);
  EXPECT_EQ(ScalarType::intTy().maxValue(), INT32_MAX);
}

TEST(Value, SignExtension) {
  const Value v(ScalarType::make(8, true), 0xFF);
  EXPECT_EQ(v.toInt(), -1);
  EXPECT_EQ(v.toUnsigned(), 0xFFu);
  const Value u(ScalarType::make(8, false), 0xFF);
  EXPECT_EQ(u.toInt(), 255);
}

TEST(Value, WrapsToWidth) {
  const Value v = Value::fromInt(ScalarType::make(4, false), 0x37);
  EXPECT_EQ(v.toUnsigned(), 0x7u);
  const Value s = Value::fromInt(ScalarType::make(4, true), 9); // 1001 -> -7
  EXPECT_EQ(s.toInt(), -7);
}

TEST(Value, ConvertSignExtendsFromSignedSource) {
  const Value v = Value::fromInt(ScalarType::make(8, true), -2);
  const Value w = v.convertTo(ScalarType::make(16, true));
  EXPECT_EQ(w.toInt(), -2);
  const Value u = Value(ScalarType::make(8, false), 0xFE).convertTo(ScalarType::make(16, true));
  EXPECT_EQ(u.toInt(), 0xFE);
}

TEST(Value, BitAndSlice) {
  const Value v(ScalarType::make(8, false), 0b10110100);
  EXPECT_EQ(v.bit(2).toUnsigned(), 1u);
  EXPECT_EQ(v.bit(0).toUnsigned(), 0u);
  EXPECT_EQ(v.slice(4, 4).toUnsigned(), 0b1011u);
}

TEST(ValueOps, AddWrap32) {
  const Value a = Value::ofInt(INT32_MAX);
  const Value b = Value::ofInt(1);
  EXPECT_EQ(ops::add(a, b, ScalarType::intTy()).toInt(), INT32_MIN);
}

TEST(ValueOps, MulNarrowResult) {
  const Value a = Value::fromInt(ScalarType::make(8, true), -3);
  const Value b = Value::fromInt(ScalarType::make(8, true), 5);
  EXPECT_EQ(ops::mul(a, b, ScalarType::intTy()).toInt(), -15);
}

TEST(ValueOps, DivisionByZeroConvention) {
  const Value a = Value::fromInt(ScalarType::make(8, false), 42);
  const Value z = Value::fromInt(ScalarType::make(8, false), 0);
  EXPECT_EQ(ops::divide(a, z, ScalarType::make(8, false)).toUnsigned(), 0xFFu);
  EXPECT_EQ(ops::rem(a, z, ScalarType::make(8, false)).toUnsigned(), 42u);
}

TEST(ValueOps, ShiftSemantics) {
  const Value a = Value::ofInt(-8);
  EXPECT_EQ(ops::shr(a, Value::ofInt(1), ScalarType::intTy()).toInt(), -4); // arithmetic
  const Value u = Value(ScalarType::uintTy(), 0x80000000u);
  EXPECT_EQ(ops::shr(u, Value::ofInt(31), ScalarType::uintTy()).toUnsigned(), 1u);
  EXPECT_EQ(ops::shl(Value::ofInt(1), Value::ofInt(40), ScalarType::intTy()).toInt(), 0);
}

TEST(ValueOps, UnsignedComparisonRule) {
  const Value a = Value::ofInt(-1);
  const Value b = Value(ScalarType::uintTy(), 1);
  // -1 compared against unsigned: converts to 0xFFFFFFFF, so a > b.
  EXPECT_EQ(ops::cmpLt(a, b).toBool(), false);
  EXPECT_EQ(ops::cmpGt(a, b).toBool(), true);
  // Signed-signed stays signed.
  EXPECT_TRUE(ops::cmpLt(Value::ofInt(-1), Value::ofInt(1)).toBool());
}

TEST(ValueOps, Mux) {
  const Value t = Value::ofInt(10), f = Value::ofInt(20);
  EXPECT_EQ(ops::mux(Value::ofBool(true), t, f, ScalarType::intTy()).toInt(), 10);
  EXPECT_EQ(ops::mux(Value::ofBool(false), t, f, ScalarType::intTy()).toInt(), 20);
}

TEST(BitsFor, Widths) {
  EXPECT_EQ(bitsForUnsigned(0), 1);
  EXPECT_EQ(bitsForUnsigned(1), 1);
  EXPECT_EQ(bitsForUnsigned(2), 2);
  EXPECT_EQ(bitsForUnsigned(255), 8);
  EXPECT_EQ(bitsForUnsigned(256), 9);
  EXPECT_EQ(bitsForSigned(0), 2);
  EXPECT_EQ(bitsForSigned(-1), 1);
  EXPECT_EQ(bitsForSigned(-128), 8);
  EXPECT_EQ(bitsForSigned(127), 8);
  EXPECT_EQ(bitsForSigned(-129), 9);
}

TEST(ValueRange, OfTypeAndWidth) {
  const ValueRange r = ValueRange::ofType(ScalarType::make(8, true));
  EXPECT_EQ(static_cast<int64_t>(r.lo()), -128);
  EXPECT_EQ(static_cast<int64_t>(r.hi()), 127);
  bool sign = false;
  EXPECT_EQ(r.requiredWidth(&sign), 8);
  EXPECT_TRUE(sign);
  const ValueRange u(0, 255);
  EXPECT_EQ(u.requiredWidth(&sign), 8);
  EXPECT_FALSE(sign);
}

TEST(ValueRange, TransferFunctions) {
  const ValueRange a(0, 255), b(0, 255);
  const ValueRange sum = a.add(b);
  EXPECT_EQ(static_cast<int64_t>(sum.hi()), 510);
  EXPECT_EQ(sum.requiredWidth(), 9);
  const ValueRange prod = a.mul(b);
  EXPECT_EQ(static_cast<int64_t>(prod.hi()), 255 * 255);
  EXPECT_EQ(prod.requiredWidth(), 16);
  const ValueRange diff = a.sub(b);
  EXPECT_EQ(static_cast<int64_t>(diff.lo()), -255);
  EXPECT_EQ(diff.requiredWidth(), 9);
}

TEST(ValueRange, MulCorners) {
  const ValueRange a(-3, 2), b(-5, 7);
  const ValueRange p = a.mul(b);
  EXPECT_EQ(static_cast<int64_t>(p.lo()), -21);
  EXPECT_EQ(static_cast<int64_t>(p.hi()), 15);
}

TEST(ValueRange, ShiftsAndJoin) {
  const ValueRange a(1, 4);
  const ValueRange s = a.shl(ValueRange(0, 3));
  EXPECT_EQ(static_cast<int64_t>(s.hi()), 32);
  const ValueRange j = ValueRange(0, 1).join(ValueRange(-4, 0));
  EXPECT_EQ(static_cast<int64_t>(j.lo()), -4);
  EXPECT_EQ(static_cast<int64_t>(j.hi()), 1);
}

TEST(ValueRange, RemBounds) {
  const ValueRange a(0, 1000), b(1, 16);
  const ValueRange r = a.rem(b);
  EXPECT_GE(static_cast<int64_t>(r.lo()), 0);
  EXPECT_LE(static_cast<int64_t>(r.hi()), 15);
}

TEST(ValueRange, ConvertCollapsesOnOverflow) {
  const ValueRange big(0, 1 << 20);
  const ValueRange c = big.convertTo(ScalarType::make(8, false));
  EXPECT_EQ(c, ValueRange::ofType(ScalarType::make(8, false)));
  const ValueRange fits(0, 200);
  EXPECT_EQ(fits.convertTo(ScalarType::make(8, false)), fits);
}

// Property sweep: conversion round-trips for every width pair where the
// value fits.
class ValueConvertSweep : public ::testing::TestWithParam<int> {};

TEST_P(ValueConvertSweep, RoundTripWithinRange) {
  const int w = GetParam();
  const ScalarType t = ScalarType::make(w, true);
  for (int64_t v = t.minValue(); v <= t.maxValue(); v += std::max<int64_t>(1, (t.maxValue() - t.minValue()) / 257)) {
    const Value x = Value::fromInt(t, v);
    EXPECT_EQ(x.toInt(), v);
    EXPECT_EQ(x.convertTo(ScalarType::intTy()).toInt(), v);
    EXPECT_EQ(x.convertTo(ScalarType::intTy()).convertTo(t).toInt(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ValueConvertSweep, ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16, 19, 24, 31, 32));

} // namespace
} // namespace roccc
