// roccc::CompileService — thread-pooled batch compilation with a
// determinism guarantee.
//
// A batch is N independent {name, source, CompileOptions} jobs. The service
// fans them out across a fixed-size ThreadPool and returns one CompileResult
// per job, **in job order**, regardless of worker count or completion order.
//
// Determinism guarantee (locked down by tests/driver_test.cpp, the golden
// snapshots in tests/golden/, and the TSan stress suite): for any job list,
// the emitted VHDL/Verilog bytes, the PassStatistics change counters, and
// the per-job diagnostics sequence are byte-identical whether the batch runs
// on 1 worker or 64. This holds because compileBatch shares no mutable state
// between jobs:
//   - each job runs a fresh roccc::Compiler over its own copy of the options;
//   - each job's diagnostics go to the DiagEngine embedded in its own
//     CompileResult slot — there is no global diagnostics sink;
//   - workers write only their own pre-allocated result slot;
//   - the compile pipeline itself is reentrant (the audit in DESIGN.md §8:
//     no layer from frontend to synth holds a hidden global or shared cache).
// Only PassStatistics::wallMs is exempt — wall time is measurement, not
// output.
//
// Fault containment: a job can fail, a batch cannot crash. Every exception a
// compile can raise is converted into a structured CompileResult outcome at
// the PassManager pass edge; the driver adds a last-resort catch around the
// whole job so that even a failure outside the pipeline (or an armed
// "driver.job" fault point) lands in the job's own result slot as
// CompileOutcome::InternalError. Workers survive throwing jobs; surviving
// jobs keep the byte-determinism guarantee (tests/fault_injection_test.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "roccc/compiler.hpp"

namespace roccc {

class CompileCache;

/// One unit of work for compileBatch.
struct CompileJob {
  /// Label used in reports ("fir.c", a manifest line, a fuzz-seed tag...);
  /// never interpreted by the service.
  std::string name;
  /// C source text to compile.
  std::string source;
  CompileOptions options;
};

/// compileBatch output: results[i] belongs to jobs[i], always.
struct BatchResult {
  std::vector<CompileResult> results;
  double wallMs = 0;  ///< wall time of the whole batch
  int workers = 1;    ///< worker count the batch ran on
  /// Cache accounting for this batch (zero when no cache is attached).
  /// `cacheHits` counts jobs served without running a compile — tier-1/-2
  /// lookups plus single-flight waiters; `cacheMisses` counts jobs that
  /// actually compiled. hits + misses == jobs when a cache is attached.
  int cacheHits = 0;
  int cacheMisses = 0;

  int succeeded() const;
  bool allOk() const { return succeeded() == static_cast<int>(results.size()); }
  /// Aggregate throughput: jobs completed per second of batch wall time.
  double kernelsPerSecond() const;
  /// Jobs that ended with `outcome` (the per-outcome counts the batch
  /// manifest reports).
  int countOutcome(CompileOutcome outcome) const;
  /// "9 ok, 1 timeout, 2 internal-error" — zero-count outcomes omitted.
  std::string outcomeSummary() const;
};

/// The contained single-job compile body: fault-injection scope, fresh
/// Compiler, and the last-resort catch that turns anything escaping the
/// pipeline into an InternalError in the returned result. compileBatch
/// runs every job through this, and so does the roccc-ccd daemon
/// (src/roccc/service_net.hpp) — sharing the body is what makes a
/// daemon-served compile byte-identical to a CLI one by construction.
CompileResult runContainedJob(const CompileJob& job);

class CompileService {
 public:
  /// `workers` == 0 picks the hardware concurrency (min 1).
  explicit CompileService(int workers = 0);

  /// Compiles every job and returns per-job results in job order. Safe to
  /// call from multiple threads; batches share the pool but never results.
  BatchResult compileBatch(const std::vector<CompileJob>& jobs) const;

  /// Attaches a compile-result cache (src/roccc/cache.hpp). Jobs whose
  /// content-addressed key is already cached are served without compiling;
  /// identical in-flight jobs are single-flighted onto one compile. The
  /// cache may be shared between services and outlives any batch. Null
  /// detaches. Determinism note: a cache hit materializes a CompileResult
  /// whose artifact bytes (VHDL/Verilog, transformed source, diagnostics,
  /// pass counters) are identical to a fresh compile's; the heavyweight IR
  /// fields (kernel/mir/datapath/module) are empty on a hit.
  void setCache(std::shared_ptr<CompileCache> cache) { cache_ = std::move(cache); }
  const std::shared_ptr<CompileCache>& cache() const { return cache_; }

  int workers() const { return workers_; }

 private:
  int workers_;
  std::shared_ptr<CompileCache> cache_;
};

} // namespace roccc
