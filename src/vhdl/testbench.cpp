#include "vhdl/testbench.hpp"

#include <cctype>

#include "dp/eval.hpp"
#include "support/strings.hpp"

namespace roccc::vhdl {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "s_" + out;
  return out;
}

std::string literal(const Value& v, ScalarType t) {
  return fmt("to_%0(%1, %2)", t.isSigned ? "signed" : "unsigned", v.convertTo(t).toInt(), t.width);
}

} // namespace

std::vector<TestVector> makeVectors(const dp::DataPath& dp,
                                    const std::vector<std::vector<int64_t>>& inputSets) {
  std::vector<TestVector> vectors;
  std::map<std::string, Value> feedback;
  for (const auto& set : inputSets) {
    TestVector v;
    for (size_t p = 0; p < dp.inputs.size(); ++p) {
      v.inputs.push_back(Value::fromInt(dp.inputs[p].type, set.at(p)));
    }
    const dp::EvalResult r = dp::evaluate(dp, v.inputs, feedback);
    v.expectedOutputs = r.outputs;
    feedback = r.nextFeedback;
    vectors.push_back(std::move(v));
  }
  return vectors;
}

std::string emitTestbench(const dp::DataPath& dp, const std::vector<TestVector>& vectors) {
  IndentWriter w;
  const std::string top = sanitize(dp.name);
  const std::string name = top + "_tb";
  const int latency = dp.stageCount - 1;
  const size_t n = vectors.size();

  w.line("-- Self-checking testbench for '" + top + "' (generated with the cosimulation");
  w.line(fmt("-- vectors; pipeline latency %0 cycles).", latency));
  w.line("library ieee;");
  w.line("use ieee.std_logic_1164.all;");
  w.line("use ieee.numeric_std.all;");
  w.blank();
  w.line("entity " + name + " is");
  w.line("end entity " + name + ";");
  w.blank();
  w.line("architecture sim of " + name + " is");
  w.indent();
  w.line("signal clk : std_logic := '0';");
  w.line("signal ce  : std_logic := '1';");
  w.line("signal tb_valid : std_logic := '1';");
  w.line("signal done : boolean := false;");
  for (const auto& p : dp.inputs) {
    w.line(fmt("signal %0 : %1(%2 downto 0);", sanitize(p.name),
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
  }
  for (const auto& p : dp.outputs) {
    w.line(fmt("signal %0 : %1(%2 downto 0);", sanitize(p.name),
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
  }
  // Stimulus/expectation ROMs.
  for (size_t ip = 0; ip < dp.inputs.size(); ++ip) {
    const auto& p = dp.inputs[ip];
    std::vector<std::string> vals;
    for (const auto& v : vectors) vals.push_back(literal(v.inputs[ip], p.type));
    w.line(fmt("type %0_vec_t is array (0 to %1) of %2(%3 downto 0);", sanitize(p.name), n - 1,
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
    w.line(fmt("constant %0_vec : %0_vec_t := (%1);", sanitize(p.name), join(vals, ", ")));
  }
  for (size_t op = 0; op < dp.outputs.size(); ++op) {
    const auto& p = dp.outputs[op];
    std::vector<std::string> vals;
    for (const auto& v : vectors) vals.push_back(literal(v.expectedOutputs[op], p.type));
    w.line(fmt("type %0_exp_t is array (0 to %1) of %2(%3 downto 0);", sanitize(p.name), n - 1,
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
    w.line(fmt("constant %0_exp : %0_exp_t := (%1);", sanitize(p.name), join(vals, ", ")));
  }
  w.dedent();
  w.line("begin");
  w.indent();
  w.line("clk <= not clk after 5 ns when not done else '0';");
  w.blank();
  std::vector<std::string> assoc = {"clk => clk", "ce => ce"};
  if (!dp.feedbacks.empty()) assoc.push_back("valid => tb_valid");
  for (const auto& p : dp.inputs) assoc.push_back(sanitize(p.name) + " => " + sanitize(p.name));
  for (const auto& p : dp.outputs) assoc.push_back(sanitize(p.name) + " => " + sanitize(p.name));
  w.line("dut : entity work." + top);
  w.indent();
  w.line("port map (" + join(assoc, ", ") + ");");
  w.dedent();
  w.blank();
  w.line("stimulus : process");
  w.line("begin");
  w.indent();
  w.line(fmt("for t in 0 to %0 loop", n - 1 + static_cast<size_t>(latency)));
  w.indent();
  for (size_t ip = 0; ip < dp.inputs.size(); ++ip) {
    const std::string nm = sanitize(dp.inputs[ip].name);
    w.line(fmt("if t <= %0 then %1 <= %1_vec(t); end if;", n - 1, nm));
  }
  w.line("wait until rising_edge(clk);");
  if (latency > 0) w.line(fmt("if t >= %0 then", latency));
  if (latency > 0) w.indent();
  for (size_t op = 0; op < dp.outputs.size(); ++op) {
    const std::string nm = sanitize(dp.outputs[op].name);
    const std::string idx = latency > 0 ? fmt("t - %0", latency) : std::string("t");
    w.line(fmt("assert %0 = %0_exp(%1)", nm, idx));
    w.indent();
    w.line(fmt("report \"mismatch on %0 at vector \" & integer'image(%1) severity failure;", nm, idx));
    w.dedent();
  }
  if (latency > 0) {
    w.dedent();
    w.line("end if;");
  }
  w.dedent();
  w.line("end loop;");
  w.line("tb_valid <= '0';");
  w.line("report \"TESTBENCH PASSED\" severity note;");
  w.line("done <= true;");
  w.line("wait;");
  w.dedent();
  w.line("end process;");
  w.dedent();
  w.line("end architecture sim;");
  return w.str();
}

} // namespace roccc::vhdl
