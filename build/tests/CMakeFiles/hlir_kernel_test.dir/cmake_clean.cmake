file(REMOVE_RECURSE
  "CMakeFiles/hlir_kernel_test.dir/hlir_kernel_test.cpp.o"
  "CMakeFiles/hlir_kernel_test.dir/hlir_kernel_test.cpp.o.d"
  "hlir_kernel_test"
  "hlir_kernel_test.pdb"
  "hlir_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlir_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
