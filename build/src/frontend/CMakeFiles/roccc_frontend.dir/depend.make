# Empty dependencies file for roccc_frontend.
# This may be replaced when dependencies are built.
