# Empty dependencies file for bench_fig6_branch_datapath.
# This may be replaced when dependencies are built.
