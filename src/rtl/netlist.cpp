#include "rtl/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::rtl {

const char* cellKindName(CellKind k) {
  switch (k) {
    case CellKind::Const: return "const";
    case CellKind::Add: return "add";
    case CellKind::Sub: return "sub";
    case CellKind::Mul: return "mul";
    case CellKind::Div: return "div";
    case CellKind::Rem: return "rem";
    case CellKind::Neg: return "neg";
    case CellKind::And: return "and";
    case CellKind::Or: return "or";
    case CellKind::Xor: return "xor";
    case CellKind::Not: return "not";
    case CellKind::Shl: return "shl";
    case CellKind::Shr: return "shr";
    case CellKind::Eq: return "eq";
    case CellKind::Ne: return "ne";
    case CellKind::Lt: return "lt";
    case CellKind::Le: return "le";
    case CellKind::Gt: return "gt";
    case CellKind::Ge: return "ge";
    case CellKind::Mux: return "mux";
    case CellKind::Reg: return "reg";
    case CellKind::Rom: return "rom";
    case CellKind::Slice: return "slice";
    case CellKind::Concat: return "concat";
    case CellKind::Resize: return "resize";
  }
  return "?";
}

bool isSequential(CellKind k) { return k == CellKind::Reg; }

int Module::addNet(ScalarType t, std::string name) {
  Net n;
  n.id = static_cast<int>(nets.size());
  n.type = t;
  n.name = std::move(name);
  nets.push_back(std::move(n));
  return nets.back().id;
}

int Module::addCell(CellKind kind, std::vector<int> inputs, int output) {
  Cell c;
  c.id = static_cast<int>(cells.size());
  c.kind = kind;
  c.inputs = std::move(inputs);
  c.output = output;
  cells.push_back(std::move(c));
  if (output >= 0) nets[static_cast<size_t>(output)].driver = cells.back().id;
  return cells.back().id;
}

int Module::addConst(int64_t value, ScalarType t, const std::string& name) {
  const int net = addNet(t, name.empty() ? fmt("const_%0", value) : name);
  const int cell = addCell(CellKind::Const, {}, net);
  cells[static_cast<size_t>(cell)].imm = value;
  return net;
}

int Module::cellCount(CellKind k) const {
  int n = 0;
  for (const auto& c : cells) {
    if (c.kind == k) ++n;
  }
  return n;
}

int64_t Module::registerBits() const {
  int64_t bits = 0;
  for (const auto& c : cells) {
    if (c.kind == CellKind::Reg) bits += nets[static_cast<size_t>(c.output)].type.width;
  }
  return bits;
}

std::string Module::dump() const {
  std::ostringstream os;
  os << "module " << name << ": " << nets.size() << " nets, " << cells.size() << " cells, latency "
     << latency << "\n";
  for (size_t i = 0; i < inputPorts.size(); ++i) {
    os << "  in  " << inputNames[i] << " : " << nets[static_cast<size_t>(inputPorts[i])].type.str() << "\n";
  }
  for (size_t i = 0; i < outputPorts.size(); ++i) {
    os << "  out " << outputNames[i] << " : " << nets[static_cast<size_t>(outputPorts[i])].type.str() << "\n";
  }
  for (const auto& c : cells) {
    os << "  " << cellKindName(c.kind) << c.id;
    if (c.kind == CellKind::Const) os << "(" << c.imm << ")";
    os << " ->";
    if (c.output >= 0) os << " " << nets[static_cast<size_t>(c.output)].name << ":" << nets[static_cast<size_t>(c.output)].type.str();
    if (!c.inputs.empty()) {
      os << " <=";
      for (int in : c.inputs) os << ' ' << nets[static_cast<size_t>(in)].name;
    }
    os << "\n";
  }
  return os.str();
}

bool Module::verify(std::vector<std::string>& errors) const {
  const size_t before = errors.size();
  std::vector<int> driverCount(nets.size(), 0);
  for (const auto& c : cells) {
    if (c.output < 0 || c.output >= static_cast<int>(nets.size())) {
      errors.push_back(fmt("cell %0 has invalid output net", c.id));
      continue;
    }
    ++driverCount[static_cast<size_t>(c.output)];
    for (int in : c.inputs) {
      if (in < 0 || in >= static_cast<int>(nets.size())) {
        errors.push_back(fmt("cell %0 has invalid input net", c.id));
      }
    }
    const size_t want = [&]() -> size_t {
      switch (c.kind) {
        case CellKind::Const: return 0;
        case CellKind::Neg:
        case CellKind::Not:
        case CellKind::Rom:
        case CellKind::Slice:
        case CellKind::Resize:
          return 1;
        case CellKind::Reg:
          return c.inputs.size() == 2 ? 2 : 1; // optional clock-enable
        case CellKind::Mux: return 3;
        default: return 2;
      }
    }();
    if (c.inputs.size() != want) {
      errors.push_back(fmt("cell %0 (%1) has %2 inputs, expected %3", c.id, cellKindName(c.kind),
                           c.inputs.size(), want));
    }
    if (c.kind == CellKind::Rom && c.romData.empty()) {
      errors.push_back(fmt("rom cell %0 has no contents", c.id));
    }
  }
  for (int p : inputPorts) {
    if (nets[static_cast<size_t>(p)].driver != -1) {
      errors.push_back(fmt("input port net %0 has a driver", p));
    }
  }
  for (size_t n = 0; n < nets.size(); ++n) {
    const bool isInput = std::find(inputPorts.begin(), inputPorts.end(), static_cast<int>(n)) != inputPorts.end();
    if (!isInput && driverCount[n] == 0) {
      errors.push_back(fmt("net %0 (%1) is undriven", n, nets[n].name));
    }
    if (driverCount[n] > 1) {
      errors.push_back(fmt("net %0 (%1) has %2 drivers", n, nets[n].name, driverCount[n]));
    }
  }
  return errors.size() == before;
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

NetlistSim::NetlistSim(const Module& m) : m_(m) {
  values_.assign(m.nets.size(), Value());
  for (size_t n = 0; n < m.nets.size(); ++n) values_[n] = Value(m.nets[n].type, 0);

  // Topological order over combinational cells; Reg outputs are sources.
  std::vector<int> state(m.cells.size(), 0); // 0 unvisited, 1 visiting, 2 done
  std::function<void(int)> visit = [&](int cid) {
    if (state[static_cast<size_t>(cid)] == 2) return;
    if (state[static_cast<size_t>(cid)] == 1) {
      throw std::runtime_error("netlist has a combinational cycle through cell " +
                               std::to_string(cid));
    }
    state[static_cast<size_t>(cid)] = 1;
    const Cell& c = m.cells[static_cast<size_t>(cid)];
    if (!isSequential(c.kind)) {
      for (int in : c.inputs) {
        const int drv = m.nets[static_cast<size_t>(in)].driver;
        if (drv >= 0 && !isSequential(m.cells[static_cast<size_t>(drv)].kind)) visit(drv);
      }
      evalOrder_.push_back(cid);
    }
    state[static_cast<size_t>(cid)] = 2;
  };
  for (size_t cid = 0; cid < m.cells.size(); ++cid) {
    if (isSequential(m.cells[cid].kind)) {
      regCells_.push_back(static_cast<int>(cid));
    } else {
      visit(static_cast<int>(cid));
    }
  }
  reset();
}

void NetlistSim::reset() {
  regState_.clear();
  for (int cid : regCells_) {
    const Cell& c = m_.cells[static_cast<size_t>(cid)];
    const ScalarType t = m_.nets[static_cast<size_t>(c.output)].type;
    regState_.push_back(Value::fromInt(t, c.imm));
  }
}

void NetlistSim::setInput(size_t port, const Value& v) {
  const int net = m_.inputPorts.at(port);
  values_[static_cast<size_t>(net)] = v.convertTo(m_.nets[static_cast<size_t>(net)].type);
}

Value NetlistSim::evalCell(const Cell& c) const {
  const ScalarType rt = m_.nets[static_cast<size_t>(c.output)].type;
  auto in = [&](size_t k) { return values_[static_cast<size_t>(c.inputs[k])]; };
  switch (c.kind) {
    case CellKind::Const: return Value::fromInt(rt, c.imm);
    case CellKind::Add: return ops::add(in(0), in(1), rt);
    case CellKind::Sub: return ops::sub(in(0), in(1), rt);
    case CellKind::Mul: return ops::mul(in(0), in(1), rt);
    case CellKind::Div: return ops::divide(in(0), in(1), rt);
    case CellKind::Rem: return ops::rem(in(0), in(1), rt);
    case CellKind::Neg: return ops::neg(in(0), rt);
    case CellKind::And: return ops::bitAnd(in(0), in(1), rt);
    case CellKind::Or: return ops::bitOr(in(0), in(1), rt);
    case CellKind::Xor: return ops::bitXor(in(0), in(1), rt);
    case CellKind::Not: return ops::bitNot(in(0), rt);
    case CellKind::Shl: return ops::shl(in(0), in(1), rt);
    case CellKind::Shr: return ops::shr(in(0), in(1), rt);
    case CellKind::Eq: return ops::cmpEq(in(0), in(1));
    case CellKind::Ne: return ops::cmpNe(in(0), in(1));
    case CellKind::Lt: return ops::cmpLt(in(0), in(1));
    case CellKind::Le: return ops::cmpLe(in(0), in(1));
    case CellKind::Gt: return ops::cmpGt(in(0), in(1));
    case CellKind::Ge: return ops::cmpGe(in(0), in(1));
    case CellKind::Mux: return ops::mux(in(0), in(1), in(2), rt);
    case CellKind::Rom: {
      const uint64_t idx = in(0).toUnsigned();
      const size_t n = c.romData.size();
      const size_t i = idx < n ? static_cast<size_t>(idx) : (n ? n - 1 : 0);
      return Value::fromInt(rt, c.romData[i]);
    }
    case CellKind::Slice: {
      const uint64_t raw = in(0).toUnsigned() >> c.aux1;
      return Value(rt, raw);
    }
    case CellKind::Concat: {
      const uint64_t hi = in(0).toUnsigned();
      const Value lo = in(1);
      return Value(rt, (hi << lo.width()) | lo.toUnsigned());
    }
    case CellKind::Resize: return in(0).convertTo(rt);
    case CellKind::Reg:
      throw InternalCompilerError(
          "netlist sim: Reg cell reached the combinational evaluator (registers "
          "are stepped by eval(), never folded)");
  }
  return Value(rt, 0);
}

void NetlistSim::eval() {
  // Register outputs first.
  for (size_t r = 0; r < regCells_.size(); ++r) {
    const Cell& c = m_.cells[static_cast<size_t>(regCells_[r])];
    values_[static_cast<size_t>(c.output)] = regState_[r];
  }
  for (int cid : evalOrder_) {
    const Cell& c = m_.cells[static_cast<size_t>(cid)];
    values_[static_cast<size_t>(c.output)] = evalCell(c);
  }
}

void NetlistSim::tick(bool enable) {
  if (!enable) return;
  for (size_t r = 0; r < regCells_.size(); ++r) {
    const Cell& c = m_.cells[static_cast<size_t>(regCells_[r])];
    if (c.inputs.size() == 2 && !values_[static_cast<size_t>(c.inputs[1])].toBool()) {
      continue; // clock-enable input low: hold
    }
    const ScalarType t = m_.nets[static_cast<size_t>(c.output)].type;
    regState_[r] = values_[static_cast<size_t>(c.inputs[0])].convertTo(t);
  }
}

Value NetlistSim::output(size_t port) const {
  return values_[static_cast<size_t>(m_.outputPorts.at(port))];
}

Value NetlistSim::netValue(int net) const { return values_[static_cast<size_t>(net)]; }

} // namespace roccc::rtl
