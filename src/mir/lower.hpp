// AST -> MIR lowering for the (loop-free) data-path function produced by
// kernel extraction. Mirrors the paper's flow: the scalar-computing function
// (Fig 3 (c) / 4 (c)) is "fed into Machine-SUIF", with the preserved macros
// converted into the LPR / SNX opcodes (section 4.2.1).
#pragma once

#include "frontend/ast.hpp"
#include "mir/ir.hpp"
#include "support/diag.hpp"

namespace roccc::mir {

/// Lowers `fnName` of the analyzed module `m` (typically KernelInfo's
/// dpModule). The function must be loop-free: loops belong to the
/// controller, not the data path — fully unroll first if needed.
/// Produces non-SSA MIR (one virtual register per source variable, Mov on
/// every assignment); run buildSSA() next.
bool lowerToMir(const ast::Module& m, const std::string& fnName, FunctionIR& out, DiagEngine& diags);

} // namespace roccc::mir
