// SHA-256 (FIPS 180-4), self-contained — the content-addressing primitive
// behind roccc::CompileCache (src/roccc/cache.hpp).
//
// The streaming interface digests arbitrarily large inputs in chunks; the
// convenience functions hash a whole buffer in one call. Output is the
// conventional 64-character lowercase hex digest, which the cache uses both
// as the in-memory map key and as the on-disk entry filename (content
// addressing: equal bytes <=> equal name).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace roccc {

class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes. May be called any number of times.
  void update(const void* data, size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finishes the digest (padding + length block) and returns the 32 raw
  /// bytes. The object must not be updated afterwards.
  std::array<uint8_t, 32> digest();
  /// digest(), rendered as 64 lowercase hex characters.
  std::string hex();

 private:
  void compress(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t totalBytes_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t bufferLen_ = 0;
  bool finished_ = false;
};

/// One-shot digest of a whole buffer, as lowercase hex.
std::string sha256Hex(std::string_view data);

} // namespace roccc
