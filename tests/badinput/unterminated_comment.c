// Block comment that never closes.
void k(const int A[4], int B[4]) { int i; /* unterminated