// 26-digit literal overflows int64; the lexer used to let std::stoull throw
// out_of_range straight through main.
void k(const int A[4], int B[4]) {
  int i;
  for (i = 0; i < 4; i = i + 1) { B[i] = A[i] + 99999999999999999999999999; }
}
