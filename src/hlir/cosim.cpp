#include "hlir/cosim.hpp"

#include <cassert>

#include "support/strings.hpp"

namespace roccc::hlir {

interp::KernelIO simulateStreams(const KernelInfo& k, const interp::KernelIO& io) {
  interp::Interpreter dp(k.dpModule);

  // Input array storage (by name).
  std::map<std::string, std::vector<int64_t>> arrays;
  for (const Stream& st : k.inputs) {
    const auto it = io.arrays.find(st.arrayName);
    if (it == io.arrays.end()) {
      throw interp::InterpError{{}, fmt("input array '%0' not bound", st.arrayName)};
    }
    arrays[st.arrayName] = it->second;
  }
  for (const Stream& st : k.outputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    arrays[st.arrayName].assign(static_cast<size_t>(n), 0);
  }

  // Feedback registers.
  std::map<std::string, int64_t> feedback;
  for (const Feedback& fb : k.feedbacks) feedback[fb.name] = fb.initial;

  std::map<std::string, int64_t> lastScalarOut;

  // Iterate the loop space lexicographically (outer slow).
  std::vector<int64_t> ivs(k.loops.size());
  const int64_t total = k.totalIterations();
  for (int64_t t = 0; t < total; ++t) {
    // Decode iteration index -> induction values.
    int64_t rem = t;
    for (size_t li = k.loops.size(); li-- > 0;) {
      const LoopDim& l = k.loops[li];
      ivs[li] = l.begin + (rem % l.trips()) * l.step;
      rem /= l.trips();
    }

    interp::KernelIO it;
    // Gather input windows.
    for (const Stream& st : k.inputs) {
      const auto& data = arrays.at(st.arrayName);
      for (size_t a = 0; a < st.offsets.size(); ++a) {
        const int64_t addr = st.flatAddress(a, ivs);
        assert(addr >= 0 && addr < static_cast<int64_t>(data.size()));
        it.scalars[st.scalarNames[a]] = data[static_cast<size_t>(addr)];
      }
    }
    // Scalar inputs: loop invariants from io, induction values live.
    for (const ScalarInput& si : k.scalarInputs) {
      if (si.isInduction) {
        it.scalars[si.name] = ivs[static_cast<size_t>(si.loop)];
      } else {
        const auto f = io.scalars.find(si.name);
        if (f == io.scalars.end()) {
          throw interp::InterpError{{}, fmt("scalar input '%0' not bound", si.name)};
        }
        it.scalars[si.name] = f->second;
      }
    }
    // Feedback state override.
    for (const auto& [name, v] : feedback) it.scalars[name] = v;

    const interp::KernelIO r = dp.run(k.dpName, it);

    // Scatter outputs.
    for (const Stream& st : k.outputs) {
      auto& data = arrays.at(st.arrayName);
      for (size_t a = 0; a < st.offsets.size(); ++a) {
        const int64_t addr = st.flatAddress(a, ivs);
        assert(addr >= 0 && addr < static_cast<int64_t>(data.size()));
        data[static_cast<size_t>(addr)] = r.scalars.at(st.scalarNames[a]);
      }
    }
    for (const ScalarOutput& so : k.scalarOutputs) {
      lastScalarOut[so.name] = r.scalars.at(so.name);
    }
    // Thread feedback to the next iteration.
    for (auto& [name, v] : feedback) v = r.scalars.at(name);
  }

  interp::KernelIO out;
  for (const Stream& st : k.outputs) out.arrays[st.arrayName] = arrays.at(st.arrayName);
  for (const auto& [n, v] : lastScalarOut) out.scalars[n] = v;
  for (const auto& [n, v] : feedback) out.scalars[n] = v;
  return out;
}

} // namespace roccc::hlir
