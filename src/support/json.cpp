#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace roccc::json {

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  // Integral doubles inside the exact range serialize as integers.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    v.int_ = static_cast<int64_t>(d);
    v.isInt_ = true;
  }
  return v;
}

Value Value::number(int64_t i) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = static_cast<double>(i);
  v.int_ = i;
  v.isInt_ = true;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::push(Value v) { items_.push_back(std::move(v)); }

void Value::set(std::string_view key, Value v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void dumpTo(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::Null: out += "null"; return;
    case Value::Kind::Bool: out += v.asBool() ? "true" : "false"; return;
    case Value::Kind::Number: {
      if (v.isIntegral()) {
        out += std::to_string(v.asInt());
      } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v.asDouble());
        out += buf;
      }
      return;
    }
    case Value::Kind::String:
      out += '"';
      out += escape(v.asString());
      out += '"';
      return;
    case Value::Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out += ',';
        first = false;
        dumpTo(item, out);
      }
      out += ']';
      return;
    }
    case Value::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        dumpTo(member, out);
      }
      out += '}';
      return;
    }
  }
}

/// Recursive-descent RFC 8259 parser over a string_view. Strict: every
/// deviation is an error with a byte offset, and nesting is capped.
class Parser {
 public:
  Parser(std::string_view text, int maxDepth) : text_(text), maxDepth_(maxDepth) {}

  bool run(Value& out, std::string& error) {
    skipWs();
    if (!parseValue(out, 0)) {
      error = fmt("%0 at byte %1", error_, pos_);
      return false;
    }
    skipWs();
    if (pos_ != text_.size()) {
      error = fmt("trailing bytes after document at byte %0", pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parseValue(Value& out, int depth) {
    if (depth > maxDepth_) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return literal("null") && (out = Value::null(), true);
      case 't': return literal("true") && (out = Value::boolean(true), true);
      case 'f': return literal("false") && (out = Value::boolean(false), true);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = Value::string(std::move(s));
        return true;
      }
      case '[': return parseArray(out, depth);
      case '{': return parseObject(out, depth);
      default: return parseNumber(out);
    }
  }

  bool parseArray(Value& out, int depth) {
    ++pos_; // '['
    out = Value::array();
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value item;
      skipWs();
      if (!parseValue(item, depth + 1)) return false;
      out.push(std::move(item));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(Value& out, int depth) {
    ++pos_; // '{'
    out = Value::object();
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key string");
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':' after object key");
      ++pos_;
      skipWs();
      Value member;
      if (!parseValue(member, depth + 1)) return false;
      out.set(key, std::move(member));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      uint32_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
      out = out * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  void appendUtf8(std::string& s, uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parseString(std::string& out) {
    ++pos_; // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_; // backslash
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          uint32_t cp;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) { // leading surrogate
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low;
            if (!hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default: return fail("bad escape character");
      }
    }
  }

  bool parseNumber(Value& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return fail("invalid value");
    }
    // Leading zeros are forbidden ("01" is two documents, i.e. an error).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      return fail("leading zero in number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string lit(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        out = Value::number(static_cast<int64_t>(i));
        return true;
      }
    }
    out = Value::number(std::strtod(lit.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int maxDepth_;
  std::string error_;
};

} // namespace

std::string Value::dump() const {
  std::string out;
  dumpTo(*this, out);
  return out;
}

bool parse(std::string_view text, Value& out, std::string& error, int maxDepth) {
  Parser p(text, maxDepth);
  return p.run(out, error);
}

} // namespace roccc::json
