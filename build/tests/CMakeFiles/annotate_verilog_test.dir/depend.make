# Empty dependencies file for annotate_verilog_test.
# This may be replaced when dependencies are built.
