// Edge and failure-injection paths across the stack.
#include <gtest/gtest.h>

#include <stdexcept>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "interp/interp.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

namespace roccc {
namespace {

const char* kFir = R"(
  void fir(const int16 A[36], int16 C[32]) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
      C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
    }
  }
)";

TEST(Edge, SystemRejectsUnboundArrays) {
  Compiler c;
  const CompileResult r = c.compileSource(kFir);
  ASSERT_TRUE(r.ok);
  rtl::System sys(r.kernel, r.datapath, r.module);
  interp::KernelIO empty;
  EXPECT_THROW(sys.run(empty), std::runtime_error);
}

TEST(Edge, SystemRejectsWrongArraySize) {
  Compiler c;
  const CompileResult r = c.compileSource(kFir);
  rtl::System sys(r.kernel, r.datapath, r.module);
  interp::KernelIO in;
  in.arrays["A"].assign(10, 0); // expects 36
  EXPECT_THROW(sys.run(in), std::runtime_error);
}

TEST(Edge, SystemCycleLimitTriggers) {
  Compiler c;
  const CompileResult r = c.compileSource(kFir);
  rtl::SystemOptions opt;
  opt.cycleLimit = 3; // cannot finish 32 iterations
  rtl::System sys(r.kernel, r.datapath, r.module, opt);
  interp::KernelIO in;
  in.arrays["A"].assign(36, 1);
  EXPECT_THROW(sys.run(in), std::runtime_error);
}

TEST(Edge, CompilerRejectsNonDividingUnroll) {
  CompileOptions opt;
  opt.unrollFactor = 3; // 32 % 3 != 0
  Compiler c(opt);
  const CompileResult r = c.compileSource(kFir);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diags.dump().find("divisible"), std::string::npos);
}

TEST(Edge, CompilerRejectsUnknownKernelName) {
  CompileOptions opt;
  opt.kernelName = "nope";
  Compiler c(opt);
  EXPECT_FALSE(c.compileSource(kFir).ok);
}

TEST(Edge, CompilerRejectsEmptyModule) {
  Compiler c;
  EXPECT_FALSE(c.compileSource("const int16 T[2] = {1,2};").ok);
}

TEST(Edge, ArrayArgumentsToCallsRejectedBySema) {
  DiagEngine d;
  ast::Module m = ast::parse(R"(
    void helper(const int8 B[4], int* o) { *o = B[0]; }
    void k(const int8 A[4], int* o) { helper(A, o); }
  )", d);
  ASSERT_FALSE(d.hasErrors()) << d.dump();
  EXPECT_FALSE(ast::analyze(m, d)); // arrays cannot be passed to calls
  EXPECT_NE(d.dump().find("used as a scalar"), std::string::npos) << d.dump();
}

TEST(Edge, MemorySubsystemScalesWithBufferAndStreams) {
  const auto small = synth::memorySubsystemResources(/*bufferBits=*/128, 1, 1);
  const auto big = synth::memorySubsystemResources(/*bufferBits=*/4096, 3, 3);
  EXPECT_GT(big.ff, small.ff);
  EXPECT_GT(big.lut4, small.lut4);
  EXPECT_EQ(small.ff, 128 + 20 + 12 + 16);
}

TEST(Edge, CosimReportsMismatchWhenModelsDiverge) {
  // Compile one kernel but cosimulate against a *different* reference
  // source: the report must flag the divergence rather than crash.
  Compiler c;
  const CompileResult r = c.compileSource(kFir);
  const char* wrongRef = R"(
    void fir(const int16 A[36], int16 C[32]) {
      int i;
      for (i = 0; i < 32; i = i + 1) {
        C[i] = A[i];
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 36; ++i) in.arrays["A"].push_back(i + 1);
  const auto rep = cosimulate(r, wrongRef, in);
  EXPECT_FALSE(rep.match);
  EXPECT_NE(rep.mismatch.find("C"), std::string::npos);
}

TEST(Edge, ZeroTripKernelRejected) {
  Compiler c;
  const CompileResult r = c.compileSource(R"(
    void k(const int8 A[4], int8 C[4]) {
      int i;
      for (i = 4; i < 4; i++) { C[i] = A[i]; }
    }
  )");
  EXPECT_FALSE(r.ok); // trip count 0: bounds are constant but empty
}

TEST(Edge, SingleIterationKernelWorks) {
  const char* src = R"(
    void k(const int8 A[4], int32* out) {
      int i;
      for (i = 0; i < 1; i++) {
        *out = A[0] + A[1] + A[2] + A[3];
      }
    }
  )";
  Compiler c;
  const CompileResult r = c.compileSource(src);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  interp::KernelIO in;
  in.arrays["A"] = {1, 2, 3, 4};
  const auto rep = cosimulate(r, src, in);
  EXPECT_TRUE(rep.match) << rep.mismatch;
  EXPECT_EQ(rep.hardware.scalars.at("out"), 10);
}

} // namespace
} // namespace roccc
