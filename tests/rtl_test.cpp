#include <gtest/gtest.h>

#include <stdexcept>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/kernel.hpp"
#include "rtl/buffers.hpp"
#include "rtl/netlist.hpp"
#include "rtl/vcd.hpp"
#include "support/strings.hpp"

namespace roccc::rtl {
namespace {

// --- netlist primitives -----------------------------------------------------

Module singleCell(CellKind k, std::vector<ScalarType> inTypes, ScalarType outType) {
  Module m;
  m.name = "cell";
  std::vector<int> ins;
  for (size_t i = 0; i < inTypes.size(); ++i) {
    const int n = m.addNet(inTypes[i], fmt("i%0", i));
    m.inputPorts.push_back(n);
    m.inputNames.push_back(fmt("i%0", i));
    ins.push_back(n);
  }
  const int o = m.addNet(outType, "o");
  m.addCell(k, ins, o);
  m.outputPorts.push_back(o);
  m.outputNames.push_back("o");
  return m;
}

int64_t evalBinary(CellKind k, int64_t a, int64_t b, ScalarType t) {
  Module m = singleCell(k, {t, t}, t);
  NetlistSim sim(m);
  sim.setInput(0, Value::fromInt(t, a));
  sim.setInput(1, Value::fromInt(t, b));
  sim.eval();
  return sim.output(0).toInt();
}

TEST(Netlist, ArithmeticPrimitives) {
  const ScalarType t = ScalarType::make(16, true);
  EXPECT_EQ(evalBinary(CellKind::Add, 1000, -250, t), 750);
  EXPECT_EQ(evalBinary(CellKind::Sub, 100, 250, t), -150);
  EXPECT_EQ(evalBinary(CellKind::Mul, -12, 11, t), -132);
  EXPECT_EQ(evalBinary(CellKind::And, 0b1100, 0b1010, t), 0b1000);
  EXPECT_EQ(evalBinary(CellKind::Xor, 0b1100, 0b1010, t), 0b0110);
}

TEST(Netlist, ArithmeticWrapsAtWidth) {
  const ScalarType t = ScalarType::make(8, true);
  EXPECT_EQ(evalBinary(CellKind::Add, 127, 1, t), -128);
  EXPECT_EQ(evalBinary(CellKind::Mul, 64, 4, t), 0);
}

TEST(Netlist, DividerConvention) {
  const ScalarType t = ScalarType::make(8, false);
  EXPECT_EQ(evalBinary(CellKind::Div, 200, 7, t), 28);
  EXPECT_EQ(evalBinary(CellKind::Div, 200, 0, t), 255);
  EXPECT_EQ(evalBinary(CellKind::Rem, 200, 0, t), 200);
}

TEST(Netlist, RegisterHoldsAndEnables) {
  Module m;
  m.name = "reg";
  const ScalarType t = ScalarType::make(8, false);
  const int d = m.addNet(t, "d");
  const int en = m.addNet(ScalarType::make(1, false), "en");
  m.inputPorts = {d, en};
  m.inputNames = {"d", "en"};
  const int q = m.addNet(t, "q");
  const int cell = m.addCell(CellKind::Reg, {d, en}, q);
  m.cells[static_cast<size_t>(cell)].imm = 42; // reset value
  m.outputPorts = {q};
  m.outputNames = {"q"};

  NetlistSim sim(m);
  sim.eval();
  EXPECT_EQ(sim.output(0).toInt(), 42); // reset value visible
  sim.setInput(0, Value::fromInt(t, 7));
  sim.setInput(1, Value::ofBool(false));
  sim.eval();
  sim.tick(true); // enable input low: hold
  sim.eval();
  EXPECT_EQ(sim.output(0).toInt(), 42);
  sim.setInput(1, Value::ofBool(true));
  sim.eval();
  sim.tick(true);
  sim.eval();
  EXPECT_EQ(sim.output(0).toInt(), 7);
  sim.tick(false); // global enable low: hold
  sim.eval();
  EXPECT_EQ(sim.output(0).toInt(), 7);
  sim.reset();
  sim.eval();
  EXPECT_EQ(sim.output(0).toInt(), 42);
}

TEST(Netlist, CombinationalCycleDetected) {
  Module m;
  m.name = "cycle";
  const ScalarType t = ScalarType::make(4, false);
  const int a = m.addNet(t, "a");
  const int b = m.addNet(t, "b");
  m.addCell(CellKind::Not, {a}, b);
  m.addCell(CellKind::Not, {b}, a);
  EXPECT_THROW(NetlistSim sim(m), std::runtime_error);
}

TEST(Netlist, VerifyCatchesUndrivenAndDoubleDriven) {
  Module m;
  m.name = "bad";
  const ScalarType t = ScalarType::make(4, false);
  const int a = m.addNet(t, "a"); // undriven, not an input
  const int b = m.addNet(t, "b");
  m.addCell(CellKind::Not, {a}, b);
  m.addCell(CellKind::Not, {a}, b); // double driver
  std::vector<std::string> errors;
  EXPECT_FALSE(m.verify(errors));
  EXPECT_GE(errors.size(), 2u);
}

// --- memory-side components ------------------------------------------------------

TEST(Bram, ReadWriteAndBounds) {
  Bram bram(ScalarType::make(8, true), std::vector<int64_t>{10, 20, 30});
  EXPECT_EQ(bram.read(1).toInt(), 20);
  bram.write(2, Value::ofInt(-5));
  EXPECT_EQ(bram.read(2).toInt(), -5);
  EXPECT_EQ(bram.reads, 2);
  EXPECT_EQ(bram.writes, 1);
  EXPECT_THROW(bram.read(3), std::runtime_error);
  EXPECT_THROW(bram.write(-1, Value::ofInt(0)), std::runtime_error);
}

TEST(IterationWalker, DecodesNestedLoops) {
  IterationWalker w({{"i", 0, 3, 1}, {"j", 2, 8, 2}});
  EXPECT_EQ(w.totalIterations(), 9);
  EXPECT_EQ(w.ivsAt(0), (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(w.ivsAt(2), (std::vector<int64_t>{0, 6}));
  EXPECT_EQ(w.ivsAt(3), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(w.ivsAt(8), (std::vector<int64_t>{2, 6}));
}

hlir::Stream firStream() {
  // 5-tap window over a 1-D array of 20, stride 1.
  hlir::Stream st;
  st.arrayName = "A";
  st.elemType = ScalarType::make(16, true);
  st.dims = {20};
  st.dimMap = {{0, 1}};
  for (int k = 0; k < 5; ++k) {
    st.offsets.push_back({k});
    st.scalarNames.push_back(fmt("A%0", k));
  }
  return st;
}

TEST(SmartBufferUnit, FetchesEachElementOnceAndServesWindows) {
  const hlir::Stream st = firStream();
  IterationWalker w({{"i", 0, 16, 1}});
  SmartBuffer buf(st, w, /*busElems=*/1);
  std::vector<int64_t> data;
  for (int i = 0; i < 20; ++i) data.push_back(i * 10);
  Bram bram(st.elemType, data);

  EXPECT_FALSE(buf.windowReady(0));
  int cycles = 0;
  while (!buf.windowReady(0)) {
    buf.cycle(bram);
    ++cycles;
  }
  EXPECT_EQ(cycles, 5); // window fill
  const auto win0 = buf.window(bram, 0);
  ASSERT_EQ(win0.size(), 5u);
  EXPECT_EQ(win0[0].toInt(), 0);
  EXPECT_EQ(win0[4].toInt(), 40);
  // One more fetch cycle unlocks the next window (stride 1 = reuse 4/5).
  buf.cycle(bram);
  EXPECT_TRUE(buf.windowReady(1));
  EXPECT_EQ(buf.window(bram, 1)[0].toInt(), 10);
  // Drain everything; total fetches equal the array size.
  for (int i = 0; i < 40; ++i) buf.cycle(bram);
  EXPECT_TRUE(buf.windowReady(15));
  EXPECT_EQ(buf.fetchCount(), 20);
  EXPECT_EQ(buf.capacityElems(), 5 + 1);
}

TEST(SmartBufferUnit, WideBusFillsFaster) {
  const hlir::Stream st = firStream();
  IterationWalker w({{"i", 0, 16, 1}});
  SmartBuffer buf(st, w, /*busElems=*/4);
  Bram bram(st.elemType, std::vector<int64_t>(20, 1));
  int cycles = 0;
  while (!buf.windowReady(0)) {
    buf.cycle(bram);
    ++cycles;
  }
  EXPECT_EQ(cycles, 2); // ceil(5/4)
}

TEST(NaiveBufferUnit, RefetchesWholeWindows) {
  const hlir::Stream st = firStream();
  IterationWalker w({{"i", 0, 16, 1}});
  NaiveBuffer buf(st, w, 1);
  Bram bram(st.elemType, std::vector<int64_t>(20, 1));
  for (int t = 0; t < 3; ++t) {
    int cycles = 0;
    while (!buf.windowReady(t)) {
      buf.cycle(bram);
      ++cycles;
    }
    EXPECT_EQ(cycles, 5) << "every window re-fetched";
    buf.advance();
  }
  EXPECT_EQ(buf.fetchCount(), 15);
}

TEST(OutputCollectorUnit, DrainsWithBackpressure) {
  hlir::Stream st;
  st.arrayName = "C";
  st.elemType = ScalarType::make(16, true);
  st.dims = {16};
  st.dimMap = {{0, 1}};
  st.offsets = {{0}};
  st.scalarNames = {"C_o0"};
  IterationWalker w({{"i", 0, 16, 1}});
  OutputCollector col(st, w, /*busElems=*/1, /*fifoDepth=*/2);
  Bram bram(st.elemType, size_t{16});
  EXPECT_TRUE(col.hasRoom());
  col.push(0, {Value::ofInt(100)});
  col.push(1, {Value::ofInt(101)});
  EXPECT_FALSE(col.hasRoom()); // fifo full -> backpressure
  col.cycle(bram);
  EXPECT_TRUE(col.hasRoom());
  col.cycle(bram);
  EXPECT_TRUE(col.drained());
  EXPECT_EQ(bram.contents()[0], 100);
  EXPECT_EQ(bram.contents()[1], 101);
}

// --- VCD waveform recording ----------------------------------------------------

TEST(Vcd, RecordsChangesInStandardFormat) {
  Module m;
  m.name = "counter";
  const ScalarType t = ScalarType::make(4, false);
  const int next = m.addNet(t, "next");
  const int q = m.addNet(t, "count");
  const int one = m.addConst(1, t);
  m.addCell(CellKind::Add, {q, one}, next);
  m.addCell(CellKind::Reg, {next}, q);
  m.outputPorts = {q};
  m.outputNames = {"count"};

  NetlistSim sim(m);
  VcdRecorder vcd(m);
  for (int c = 0; c < 5; ++c) {
    sim.eval();
    vcd.sample(sim);
    sim.tick(true);
  }
  EXPECT_EQ(vcd.sampleCount(), 5u);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 4"), std::string::npos);
  EXPECT_NE(out.find("count"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#40"), std::string::npos);
  // The counter value changes each sample: b0000 then b0001 ...
  EXPECT_NE(out.find("b0001"), std::string::npos);
  EXPECT_NE(out.find("b0010"), std::string::npos);
}

TEST(Vcd, OnlyNamedSkipsTemporaries) {
  Module m;
  m.name = "x";
  m.addNet(ScalarType::make(8, false), "t12_s1");
  m.addNet(ScalarType::make(8, false), "useful");
  m.inputPorts = {0, 1};
  m.inputNames = {"t12_s1", "useful"};
  VcdRecorder all(m, false);
  VcdRecorder named(m, true);
  NetlistSim sim(m);
  sim.eval();
  all.sample(sim);
  named.sample(sim);
  EXPECT_NE(all.render().find("t12_s1"), std::string::npos);
  EXPECT_EQ(named.render().find("t12_s1"), std::string::npos);
  EXPECT_NE(named.render().find("useful"), std::string::npos);
}

// --- 2-D geometry through the walker + smart buffer -------------------------------

TEST(SmartBufferUnit, LineBufferCapacityFor2D) {
  // 3x3 window over an 8-column image: capacity = 2 lines + 3 elements.
  hlir::Stream st;
  st.arrayName = "X";
  st.elemType = ScalarType::make(8, false);
  st.dims = {6, 8};
  st.dimMap = {{0, 1}, {1, 1}};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      st.offsets.push_back({r, c});
      st.scalarNames.push_back(fmt("X%0", r * 3 + c));
    }
  }
  IterationWalker w({{"i", 0, 4, 1}, {"j", 0, 6, 1}});
  SmartBuffer buf(st, w, 1);
  EXPECT_EQ(buf.capacityElems(), 2 * 8 + 3 + 1); // line-buffer sizing
}

} // namespace
} // namespace roccc::rtl
