// Golden-snapshot tests: the generated VHDL for all nine Table 1 kernels is
// checked in under tests/golden/ and must match byte-for-byte on every
// platform, build type, and — together with tests/driver_test.cpp — every
// batch worker count. Any intentional change to code generation shows up as
// a reviewable diff of the golden files.
//
// Updating the goldens after an intentional emitter/pipeline change:
//
//   ./build/tests/table1_golden_test --update-goldens
//   git diff tests/golden/        # review every byte that moved
//
// (or set ROCCC_UPDATE_GOLDENS=1 in the environment). The test writes the
// freshly generated VHDL over the checked-in files and then passes; commit
// the diff together with the change that caused it. ROCCC_GOLDEN_DIR is
// injected by tests/CMakeLists.txt and points at the source tree, so
// updates land in git, not in the build directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "../bench/kernels.hpp"
#include "roccc/compiler.hpp"

namespace roccc {
namespace {

bool g_updateGoldens = false;

std::string goldenPath(const std::string& kernelName) {
  return std::string(ROCCC_GOLDEN_DIR) + "/" + kernelName + ".vhd";
}

CompileOptions optionsFor(const bench::NamedKernel& k) {
  CompileOptions opt;
  if (k.targetStageDelayNs > 0) opt.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
  return opt;
}

class Table1Golden : public ::testing::TestWithParam<bench::NamedKernel> {};

TEST_P(Table1Golden, GeneratedVhdlMatchesGoldenBytes) {
  const bench::NamedKernel& k = GetParam();
  const Compiler compiler(optionsFor(k));
  const CompileResult r = compiler.compileSource(k.source);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  ASSERT_FALSE(r.vhdl.empty());

  const std::string path = goldenPath(k.name);
  if (g_updateGoldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << r.vhdl;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with --update-goldens";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (golden != r.vhdl) {
    // Locate the first differing line for a readable failure before the
    // byte-count summary.
    std::istringstream a(golden), b(r.vhdl);
    std::string la, lb;
    int line = 0;
    while (true) {
      ++line;
      const bool ga = static_cast<bool>(std::getline(a, la));
      const bool gb = static_cast<bool>(std::getline(b, lb));
      if (!ga || !gb || la != lb) break;
    }
    FAIL() << k.name << ": generated VHDL diverges from " << path << " at line " << line
           << "\n  golden:    " << la << "\n  generated: " << lb
           << "\n(golden " << golden.size() << " bytes, generated " << r.vhdl.size()
           << " bytes; run with --update-goldens if the change is intentional)";
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, Table1Golden, ::testing::ValuesIn(bench::kTable1Kernels),
                         [](const ::testing::TestParamInfo<bench::NamedKernel>& info) {
                           return std::string(info.param.name);
                         });

} // namespace
} // namespace roccc

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-goldens") == 0) {
      roccc::g_updateGoldens = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (const char* env = std::getenv("ROCCC_UPDATE_GOLDENS")) {
    if (env[0] != '\0' && env[0] != '0') roccc::g_updateGoldens = true;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
