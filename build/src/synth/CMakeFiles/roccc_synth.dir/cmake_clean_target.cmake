file(REMOVE_RECURSE
  "libroccc_synth.a"
)
