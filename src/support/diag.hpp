// Diagnostics engine shared by all compiler phases.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace roccc {

/// 1-based position in the kernel source buffer. line==0 means "no location"
/// (diagnostics raised by later phases that lost source attribution).
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool isValid() const { return line > 0; }
  std::string str() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Collects diagnostics across the pipeline. Phases report and keep going
/// where possible; the driver checks hasErrors() between phases.
class DiagEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) { report(Severity::Error, loc, std::move(message)); }
  void warning(SourceLoc loc, std::string message) { report(Severity::Warning, loc, std::move(message)); }
  void note(SourceLoc loc, std::string message) { report(Severity::Note, loc, std::move(message)); }

  bool hasErrors() const { return errorCount_ > 0; }
  int errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics, one per line.
  std::string dump() const;
  void print(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
  int errorCount_ = 0;
};

} // namespace roccc
