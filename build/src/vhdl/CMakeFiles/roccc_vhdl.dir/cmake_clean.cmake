file(REMOVE_RECURSE
  "CMakeFiles/roccc_vhdl.dir/check.cpp.o"
  "CMakeFiles/roccc_vhdl.dir/check.cpp.o.d"
  "CMakeFiles/roccc_vhdl.dir/emit.cpp.o"
  "CMakeFiles/roccc_vhdl.dir/emit.cpp.o.d"
  "CMakeFiles/roccc_vhdl.dir/testbench.cpp.o"
  "CMakeFiles/roccc_vhdl.dir/testbench.cpp.o.d"
  "CMakeFiles/roccc_vhdl.dir/verilog.cpp.o"
  "CMakeFiles/roccc_vhdl.dir/verilog.cpp.o.d"
  "libroccc_vhdl.a"
  "libroccc_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
