/* Sum of absolute differences over a 4-wide window of two streams, one
   conditional negation per tap (a mux tree feeding an adder tree). */
void sad4(const uint8 A[67], const uint8 B[67], uint12 S[64]) {
  int i;
  int10 d0;
  int10 d1;
  int10 d2;
  int10 d3;
  for (i = 0; i < 64; i++) {
    d0 = A[i]   - B[i];
    d1 = A[i+1] - B[i+1];
    d2 = A[i+2] - B[i+2];
    d3 = A[i+3] - B[i+3];
    if (d0 < 0) {
      d0 = 0 - d0;
    }
    if (d1 < 0) {
      d1 = 0 - d1;
    }
    if (d2 < 0) {
      d2 = 0 - d2;
    }
    if (d3 < 0) {
      d3 = 0 - d3;
    }
    S[i] = d0 + d1 + d2 + d3;
  }
}
