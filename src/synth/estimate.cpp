#include "synth/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "support/strings.hpp"

namespace roccc::synth {

Resources& Resources::operator+=(const Resources& o) {
  lut4 += o.lut4;
  ff += o.ff;
  mult18 += o.mult18;
  bram += o.bram;
  srl16 += o.srl16;
  return *this;
}

int64_t slicesFor(const Resources& r) {
  // A Virtex-II slice holds 2 LUT4s and 2 FFs (an SRL16 occupies a LUT
  // position). Real packing shares slices between logic and registers
  // imperfectly; the fill factor matches typical map reports for
  // small/medium designs.
  const int64_t lutSlices = (r.lut4 + r.srl16 + 1) / 2;
  const int64_t ffSlices = (r.ff + 1) / 2;
  const double packed = std::max(lutSlices, ffSlices) +
                        0.35 * static_cast<double>(std::min(lutSlices, ffSlices));
  return static_cast<int64_t>(std::ceil(packed));
}

namespace {

struct CellCost {
  Resources res;
  double delayNs = 0;
  double dynamicPj = 0; ///< full-activity switched energy per evaluation
  double leakageUw = 0;
};

int widthOf(const rtl::Module& m, int net) { return m.nets[static_cast<size_t>(net)].type.width; }

bool drivenByConst(const rtl::Module& m, int net) {
  const int d = m.nets[static_cast<size_t>(net)].driver;
  return d >= 0 && m.cells[static_cast<size_t>(d)].kind == rtl::CellKind::Const;
}

/// The width a cell's silicon actually spans: its carry chain / mux tree
/// covers the widest of the output and the listed operand nets. dp-level
/// range narrowing can leave the result narrower than an operand, and the
/// old per-op constants priced only the output — undercounting compare/mux
/// chains fed by wide annotated values (the Table 1 regression in
/// tests/timing_model_test.cpp pins the corrected numbers).
int effectiveWidth(const rtl::Module& m, const rtl::Cell& c, size_t firstInput) {
  int w = c.output >= 0 ? widthOf(m, c.output) : 1;
  for (size_t i = firstInput; i < c.inputs.size(); ++i) {
    w = std::max(w, widthOf(m, c.inputs[i]));
  }
  return w;
}

CellCost cost(const rtl::Module& m, const rtl::Cell& c, const EstimateOptions& opt) {
  const TimingModel& tm = opt.timing ? *opt.timing : TimingModel::virtex2();
  CellCost k;
  const int w = c.output >= 0 ? widthOf(m, c.output) : 1;
  // Direct table rows: resources, delay and energy come straight from the
  // model (single source of truth — the old hand-rolled constants here were
  // folded into TimingModel::virtex2()).
  auto fromRow = [&](Primitive p, int width) {
    const PrimitiveCost row = tm.cost(p, width);
    k.res.lut4 = static_cast<int64_t>(std::llround(row.lut4));
    k.res.ff = static_cast<int64_t>(std::llround(row.ff));
    k.res.mult18 = static_cast<int64_t>(std::llround(row.mult18));
    k.res.bram = static_cast<int64_t>(std::llround(row.bram));
    k.delayNs = row.delayNs;
    k.dynamicPj = row.dynamicPj;
    k.leakageUw = row.leakageUw;
  };
  auto energyFromRes = [&] {
    k.dynamicPj = tm.resourceDynamicPj(static_cast<double>(k.res.lut4),
                                       static_cast<double>(k.res.ff),
                                       static_cast<double>(k.res.mult18),
                                       static_cast<double>(k.res.bram));
    k.leakageUw = tm.resourceLeakageUw(static_cast<double>(k.res.lut4),
                                       static_cast<double>(k.res.ff),
                                       static_cast<double>(k.res.mult18),
                                       static_cast<double>(k.res.bram));
  };
  switch (c.kind) {
    case rtl::CellKind::Const:
    case rtl::CellKind::Slice:
    case rtl::CellKind::Concat:
    case rtl::CellKind::Resize:
      return k; // wiring only
    case rtl::CellKind::Add:
    case rtl::CellKind::Sub:
    case rtl::CellKind::Neg:
      fromRow(Primitive::Add, effectiveWidth(m, c, 0));
      return k;
    case rtl::CellKind::Mul: {
      const int wa = widthOf(m, c.inputs[0]);
      const int wb = widthOf(m, c.inputs[1]);
      if (opt.useMult18) {
        // Block count is structural in (wa, wb); delay follows the table at
        // the widest operand (1 block <= 18 bits, a block array above).
        k.res.mult18 = std::max<int64_t>(1, ((wa + 16) / 17) * static_cast<int64_t>((wb + 16) / 17));
        k.delayNs = tm.delayNs(Primitive::Mul18, std::max(wa, wb));
      } else {
        // An asymmetric wa x wb array is the geometric mean of the two
        // square rows (lut(w) ~ k*w^2, so sqrt(lut(wa)*lut(wb)) ~ k*wa*wb).
        k.res.lut4 = static_cast<int64_t>(
            std::sqrt(tm.cost(Primitive::MulLut, wa).lut4 * tm.cost(Primitive::MulLut, wb).lut4));
        k.delayNs = tm.delayNs(Primitive::MulLut, std::max(wa, wb));
      }
      energyFromRes();
      return k;
    }
    case rtl::CellKind::Div:
    case rtl::CellKind::Rem:
      // Un-expanded combinational array divider (only reachable with
      // expandDividers=false): the table row prices the full W-row array.
      fromRow(Primitive::Div, effectiveWidth(m, c, 0));
      return k;
    case rtl::CellKind::And:
    case rtl::CellKind::Or:
    case rtl::CellKind::Xor:
    case rtl::CellKind::Not:
      fromRow(Primitive::Logic, effectiveWidth(m, c, 0));
      return k;
    case rtl::CellKind::Shl:
    case rtl::CellKind::Shr:
      if (drivenByConst(m, c.inputs[1])) return k; // constant shift = wiring
      // The shifted word's width sizes the barrel; the amount input only
      // picks mux levels and is excluded.
      fromRow(Primitive::Shift, std::max(w, widthOf(m, c.inputs[0])));
      return k;
    case rtl::CellKind::Eq:
    case rtl::CellKind::Ne:
    case rtl::CellKind::Lt:
    case rtl::CellKind::Le:
    case rtl::CellKind::Gt:
    case rtl::CellKind::Ge:
      // 1-bit result; the carry chain spans the operands.
      fromRow(Primitive::Cmp, std::max(widthOf(m, c.inputs[0]), widthOf(m, c.inputs[1])));
      return k;
    case rtl::CellKind::Mux:
      // Data inputs (1, 2) size the mux tree; the select (0) is excluded.
      fromRow(Primitive::Mux, effectiveWidth(m, c, 1));
      return k;
    case rtl::CellKind::Reg:
      fromRow(Primitive::Reg, w);
      return k;
    case rtl::CellKind::Rom: {
      const int64_t bits = static_cast<int64_t>(c.romData.size()) * w;
      if (bits > opt.romBramThresholdBits) {
        k.res.bram = (bits + 18 * 1024 - 1) / (18 * 1024);
        k.delayNs = tm.bramAccessNs;
      } else {
        // Distributed ROM: each LUT4 stores 16x1; the read is one LUT level
        // plus a mux level per doubling of depth.
        const int64_t depth16 = std::max<int64_t>(1, (static_cast<int64_t>(c.romData.size()) + 15) / 16);
        k.res.lut4 = depth16 * w;
        const int muxLevels = static_cast<int>(std::ceil(std::log2(static_cast<double>(depth16))));
        k.delayNs = tm.cost(Primitive::Logic, 1).delayNs + tm.romMuxLevelNs * std::max(0, muxLevels);
      }
      energyFromRes();
      return k;
    }
  }
  return k;
}

} // namespace

Report estimate(const rtl::Module& m, const EstimateOptions& opt) {
  Report rep;
  const TimingModel& tm = opt.timing ? *opt.timing : TimingModel::virtex2();
  double leakageUw = 0;

  // SRL16 inference: register chains (reg -> reg, fanout 1, no enable)
  // of depth >= 3 become shift-register LUTs: width * ceil((k-1)/16)
  // SRL16s plus one output register stage.
  std::vector<char> regAsSrl(m.cells.size(), 0);
  if (opt.inferSrl16) {
    std::vector<int> fanout(m.nets.size(), 0);
    for (const auto& c : m.cells) {
      for (int in : c.inputs) ++fanout[static_cast<size_t>(in)];
    }
    for (int p : m.outputPorts) ++fanout[static_cast<size_t>(p)];
    auto isChainReg = [&](const rtl::Cell& c) {
      return c.kind == rtl::CellKind::Reg && c.inputs.size() == 1;
    };
    // Walk chains from their heads (a chain reg whose input is NOT a
    // single-fanout chain reg).
    for (const auto& c : m.cells) {
      if (!isChainReg(c)) continue;
      const int drv = m.nets[static_cast<size_t>(c.inputs[0])].driver;
      const bool headOfChain =
          drv < 0 || !isChainReg(m.cells[static_cast<size_t>(drv)]) ||
          fanout[static_cast<size_t>(c.inputs[0])] > 1;
      if (!headOfChain) continue;
      // Extend forward while the output feeds exactly one chain reg.
      std::vector<int> chain = {c.id};
      int cur = c.id;
      for (;;) {
        const int out = m.cells[static_cast<size_t>(cur)].output;
        if (fanout[static_cast<size_t>(out)] != 1) break;
        int nextReg = -1;
        for (const auto& cc : m.cells) {
          if (isChainReg(cc) && !cc.inputs.empty() && cc.inputs[0] == out) nextReg = cc.id;
        }
        if (nextReg < 0) break;
        chain.push_back(nextReg);
        cur = nextReg;
      }
      if (chain.size() >= 3) {
        const int w = m.nets[static_cast<size_t>(c.output)].type.width;
        // All but the final stage collapse into SRL16s.
        const int64_t depth = static_cast<int64_t>(chain.size()) - 1;
        const int64_t srls = w * ((depth + 15) / 16);
        rep.res.srl16 += srls;
        rep.res.ff += w; // the chain's output register
        // An SRL16 switches like a LUT; the tail register like an FF.
        rep.dynamicPjPerCycle +=
            tm.resourceDynamicPj(static_cast<double>(srls), static_cast<double>(w), 0, 0);
        leakageUw += tm.resourceLeakageUw(static_cast<double>(srls), static_cast<double>(w), 0, 0);
        for (size_t i = 0; i < chain.size(); ++i) regAsSrl[static_cast<size_t>(chain[i])] = 1;
      }
    }
  }

  std::vector<double> cellDelay(m.cells.size(), 0);
  for (const auto& c : m.cells) {
    if (regAsSrl[static_cast<size_t>(c.id)]) continue; // priced as SRL16 above
    const CellCost k = cost(m, c, opt);
    rep.res += k.res;
    rep.dynamicPjPerCycle += k.dynamicPj;
    leakageUw += k.leakageUw;
    cellDelay[static_cast<size_t>(c.id)] = k.delayNs;
  }
  rep.slices = slicesFor(rep.res);
  rep.leakageMw = leakageUw / 1000.0;

  // Longest combinational path: DFS with memoization over the cell DAG
  // (registers and inputs are path sources). arrival(cell) = max over
  // combinational fan-in of arrival + routing, + own delay.
  std::vector<double> arrival(m.cells.size(), -1.0);
  std::function<double(int)> arrivalOf = [&](int cid) -> double {
    double& a = arrival[static_cast<size_t>(cid)];
    if (a >= 0) return a;
    const rtl::Cell& c = m.cells[static_cast<size_t>(cid)];
    a = 0; // break cycles defensively (registers are never recursed into)
    double in = 0;
    for (int net : c.inputs) {
      const int drv = m.nets[static_cast<size_t>(net)].driver;
      if (drv < 0) continue; // module input
      const rtl::Cell& dc = m.cells[static_cast<size_t>(drv)];
      if (dc.kind == rtl::CellKind::Reg || dc.kind == rtl::CellKind::Const) continue;
      in = std::max(in, arrivalOf(drv) + opt.routingPerHopNs);
    }
    a = in + cellDelay[static_cast<size_t>(cid)];
    return a;
  };

  double worst = 0;
  std::string worstName = "(none)";
  for (const auto& c : m.cells) {
    const double a = arrivalOf(c.id);
    if (a > worst) {
      worst = a;
      worstName = c.output >= 0 ? m.nets[static_cast<size_t>(c.output)].name : cellKindName(c.kind);
    }
  }
  rep.criticalPathNs = std::max(0.8, worst) + opt.clockingOverheadNs;
  rep.criticalThrough = worstName;
  return rep;
}

Resources memorySubsystemResources(int64_t bufferBits, int addressGenerators, int streams) {
  Resources r;
  // Smart-buffer storage in SRL16s/FFs: model as FF-based line storage with
  // one LUT per 8 bits of shifting/muxing plus the controller FSMs
  // ("pre-existing parameterized FSMs in a VHDL library").
  r.ff = bufferBits;
  r.lut4 = bufferBits / 4;
  r.lut4 += int64_t{28} * addressGenerators; // counters + comparators
  r.ff += int64_t{20} * addressGenerators;
  r.lut4 += int64_t{36} * streams; // per-stream handshake/valid logic
  r.ff += int64_t{12} * streams;
  r.lut4 += 40; // higher-level controller
  r.ff += 16;
  return r;
}

double estimatePowerMw(const Resources& r, double clockMHz, double activity) {
  // Activity-based CV^2f over the mapped resources; the per-resource
  // switched capacitances (and the 1.5 V core) live in the timing model so
  // estimation and the per-primitive energy rows share one calibration.
  const TimingModel& tm = TimingModel::virtex2();
  const double pj = tm.resourceDynamicPj(static_cast<double>(r.lut4), static_cast<double>(r.ff),
                                         static_cast<double>(r.mult18),
                                         static_cast<double>(r.bram));
  // pJ * MHz = microwatts; convert to milliwatts.
  return pj * clockMHz * activity / 1000.0;
}

std::string Report::summary() const {
  std::ostringstream os;
  os << "slices=" << slices << " (lut4=" << res.lut4 << ", ff=" << res.ff
     << ", srl16=" << res.srl16 << ", mult18=" << res.mult18 << ", bram=" << res.bram
     << "), fmax=" << fmaxMHz()
     << " MHz (critical " << criticalPathNs << " ns through " << criticalThrough << ")"
     << ", energy=" << energyPerCyclePj() << " pJ/cycle (leakage " << leakageMw
     << " mW), EDP=" << edpPjNs() << " pJ*ns";
  return os.str();
}

} // namespace roccc::synth
