// Sweep-level cache and fault-containment battery (ISSUE 8):
//
//   ExploreCache  — a two-pass sweep over an overlapping grid against one
//                   disk cache directory: the second pass must report
//                   nonzero hits and produce byte-identical reports (the
//                   cache can never change what a sweep observes).
//   ExploreFault  — fault injection at dp.retime and frontend.parse: the
//                   armed point comes back as a typed outcome row in the
//                   JSON without aborting the sweep, and every sibling
//                   point's metrics are unaffected.
#include <gtest/gtest.h>

#include <filesystem>

#include "../bench/kernels.hpp"
#include "roccc/cache.hpp"
#include "roccc/explore.hpp"

namespace roccc {
namespace {

namespace fs = std::filesystem;

SweepGrid smallGrid() {
  SweepGrid grid;
  for (const char* name : {"fir", "udiv"}) {
    for (const auto& k : bench::kTable1Kernels) {
      if (std::string(name) == k.name) {
        grid.kernels.push_back({k.name, k.source, k.targetStageDelayNs});
      }
    }
  }
  grid.unrolls = {1, 2};
  return grid;
}

std::shared_ptr<CompileCache> diskCache(const std::string& dir) {
  CacheConfig cfg;
  cfg.diskDir = dir;
  auto cache = std::make_shared<CompileCache>(cfg);
  EXPECT_TRUE(cache->diskEnabled());
  return cache;
}

TEST(ExploreCache, WarmPassHitsAndStaysByteIdentical) {
  const std::string dir = ::testing::TempDir() + "roccc_explore_cache_warm";
  fs::remove_all(dir);

  SweepOptions cold;
  cold.cache = diskCache(dir);
  const SweepResult first = runSweep(smallGrid(), cold);
  EXPECT_EQ(first.failedCount(), 0) << first.outcomeSummary();
  EXPECT_EQ(first.cacheHits, 0);
  EXPECT_GT(first.cacheMisses, 0);

  // A fresh cache object over the same directory: the disk tier alone must
  // serve the whole overlapping grid.
  SweepOptions warm;
  warm.cache = diskCache(dir);
  const SweepResult second = runSweep(smallGrid(), warm);
  EXPECT_GT(second.cacheHits, 0);
  EXPECT_EQ(second.cacheMisses, 0);
  EXPECT_EQ(first.toJson(), second.toJson());

  // An overlapping-but-larger grid still hits on the shared points.
  SweepGrid bigger = smallGrid();
  bigger.unrolls = {1, 2, 4};
  SweepOptions third;
  third.cache = diskCache(dir);
  const SweepResult overlapped = runSweep(bigger, third);
  EXPECT_GT(overlapped.cacheHits, 0);
  EXPECT_GT(overlapped.cacheMisses, 0); // the new unroll-4 points
  fs::remove_all(dir);
}

TEST(ExploreCache, SharedCacheAcrossSweepsKeepsInMemoryHits) {
  auto cache = std::make_shared<CompileCache>(CacheConfig{});
  SweepOptions opt;
  opt.cache = cache;
  const SweepResult first = runSweep(smallGrid(), opt);
  const SweepResult second = runSweep(smallGrid(), opt);
  EXPECT_EQ(first.cacheHits, 0);
  EXPECT_GT(second.cacheHits, 0);
  EXPECT_EQ(second.cacheMisses, 0);
  EXPECT_EQ(first.toJson(), second.toJson());
}

// --- fault containment -------------------------------------------------------

/// Arms `faultPoint` on the single point whose label matches, leaving every
/// sibling untouched, and returns the sweep.
SweepResult sweepWithFaultAt(const std::string& label, const std::string& faultPoint) {
  std::vector<SweepPoint> points = expandGrid(smallGrid());
  bool armed = false;
  for (auto& p : points) {
    if (p.label == label) {
      p.options.injectFaultAt = faultPoint;
      armed = true;
    }
  }
  EXPECT_TRUE(armed) << label;
  return runSweep(points, SweepOptions{});
}

TEST(ExploreFault, RetimeFaultIsATypedRowSiblingsUnaffected) {
  const SweepResult clean = runSweep(smallGrid(), SweepOptions{});
  ASSERT_EQ(clean.failedCount(), 0) << clean.outcomeSummary();

  const SweepResult faulted = sweepWithFaultAt("fir@u2/ns4", "dp.retime");
  ASSERT_EQ(faulted.points.size(), clean.points.size());
  int failed = 0;
  for (size_t i = 0; i < faulted.points.size(); ++i) {
    const SweepPointResult& f = faulted.points[i];
    const SweepPointResult& c = clean.points[i];
    ASSERT_EQ(f.point.label, c.point.label);
    if (f.point.label == "fir@u2/ns4") {
      ++failed;
      EXPECT_EQ(f.outcome, PointOutcome::InternalError);
      EXPECT_FALSE(f.error.empty());
    } else {
      EXPECT_EQ(f.outcome, PointOutcome::Ok) << f.point.label;
      EXPECT_EQ(f.metrics.slices, c.metrics.slices) << f.point.label;
      EXPECT_EQ(f.metrics.cycles, c.metrics.cycles) << f.point.label;
      EXPECT_DOUBLE_EQ(f.metrics.fmaxMHz, c.metrics.fmaxMHz) << f.point.label;
    }
  }
  EXPECT_EQ(failed, 1);
  // The typed outcome is in the JSON — a faulted sweep reports, not aborts.
  EXPECT_NE(faulted.toJson().find("\"outcome\": \"internal-error\""), std::string::npos);
  // The faulted point is off the frontier; the kernel still has one.
  for (const auto& fr : faulted.frontiers) EXPECT_FALSE(fr.points.empty()) << fr.kernel;
}

TEST(ExploreFault, FrontendFaultIsContainedToo) {
  const SweepResult faulted = sweepWithFaultAt("udiv@u1/ns3", "frontend.parse");
  EXPECT_EQ(faulted.failedCount(), 1) << faulted.outcomeSummary();
  for (const auto& p : faulted.points) {
    if (p.point.label == "udiv@u1/ns3") {
      EXPECT_EQ(p.outcome, PointOutcome::InternalError);
    } else {
      EXPECT_EQ(p.outcome, PointOutcome::Ok) << p.point.label;
    }
  }
}

TEST(ExploreFault, FaultedSweepAgainstACacheDoesNotPoisonIt) {
  // Fault-injected compiles are never cached (cache_test.cpp), so a soak
  // against a shared cache leaves clean reruns clean.
  auto cache = std::make_shared<CompileCache>(CacheConfig{});
  std::vector<SweepPoint> points = expandGrid(smallGrid());
  for (auto& p : points) {
    if (p.label == "fir@u1/ns4") p.options.injectFaultAt = "dp.retime";
  }
  SweepOptions opt;
  opt.cache = cache;
  const SweepResult faulted = runSweep(points, opt);
  EXPECT_EQ(faulted.failedCount(), 1);

  const SweepResult clean = runSweep(smallGrid(), opt);
  EXPECT_EQ(clean.failedCount(), 0) << clean.outcomeSummary();
}

} // namespace
} // namespace roccc
