
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/annotate.cpp" "src/dp/CMakeFiles/roccc_dp.dir/annotate.cpp.o" "gcc" "src/dp/CMakeFiles/roccc_dp.dir/annotate.cpp.o.d"
  "/root/repo/src/dp/datapath.cpp" "src/dp/CMakeFiles/roccc_dp.dir/datapath.cpp.o" "gcc" "src/dp/CMakeFiles/roccc_dp.dir/datapath.cpp.o.d"
  "/root/repo/src/dp/eval.cpp" "src/dp/CMakeFiles/roccc_dp.dir/eval.cpp.o" "gcc" "src/dp/CMakeFiles/roccc_dp.dir/eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mir/CMakeFiles/roccc_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/roccc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/roccc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
