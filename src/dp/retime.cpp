#include "dp/retime.hpp"

#include <algorithm>
#include <cmath>

#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::dp {

using mir::Opcode;

namespace {

constexpr double kEps = 1e-9;

/// Recomputes every op's within-stage accumulated delay and returns the
/// per-stage worst (the stage's combinational depth, routing included).
std::vector<double> computeStageDelays(DataPath& d, const std::vector<double>& delay,
                                       const std::vector<int>& order) {
  int maxStage = 0;
  for (const auto& o : d.ops) maxStage = std::max(maxStage, o.stage);
  std::vector<double> worst(static_cast<size_t>(maxStage) + 1, 0.0);
  for (auto& o : d.ops) o.pathDelayNs = 0;
  for (int oi : order) {
    DpOp& o = d.ops[static_cast<size_t>(oi)];
    double in = 0;
    for (int vid : o.operands) {
      const DpValue& v = d.values[static_cast<size_t>(vid)];
      if (v.def < 0) continue;
      const DpOp& defOp = d.ops[static_cast<size_t>(v.def)];
      if (defOp.op == Opcode::Ldc) continue;
      if (defOp.stage == o.stage) in = std::max(in, defOp.pathDelayNs);
    }
    o.pathDelayNs = in + delay[static_cast<size_t>(oi)];
    worst[static_cast<size_t>(o.stage)] = std::max(worst[static_cast<size_t>(o.stage)],
                                                   o.pathDelayNs);
  }
  return worst;
}

/// The smallest budget each op can ever fit in: its own delay, except that a
/// feedback cone is unsplittable, so every cone member carries the cone's
/// longest internal path.
std::vector<double> unsplittableUnits(const DataPath& d, const std::vector<double>& delay,
                                      const std::vector<int>& order,
                                      const std::vector<int>& coneOf) {
  std::vector<double> unit = delay;
  std::vector<double> acc(d.ops.size(), 0.0); // longest cone-internal chain ending at op
  std::vector<double> coneWorst(d.feedbacks.size(), 0.0);
  for (int oi : order) {
    const int cone = coneOf[static_cast<size_t>(oi)];
    if (cone < 0) continue;
    const DpOp& o = d.ops[static_cast<size_t>(oi)];
    double in = 0;
    for (int vid : o.operands) {
      const int def = d.values[static_cast<size_t>(vid)].def;
      if (def >= 0 && coneOf[static_cast<size_t>(def)] == cone) {
        in = std::max(in, acc[static_cast<size_t>(def)]);
      }
    }
    acc[static_cast<size_t>(oi)] = in + delay[static_cast<size_t>(oi)];
    coneWorst[static_cast<size_t>(cone)] =
        std::max(coneWorst[static_cast<size_t>(cone)], acc[static_cast<size_t>(oi)]);
  }
  for (size_t oi = 0; oi < d.ops.size(); ++oi) {
    if (coneOf[oi] >= 0) unit[oi] = coneWorst[static_cast<size_t>(coneOf[oi])];
  }
  return unit;
}

} // namespace

bool retimePipeline(DataPath& d, const synth::TimingModel& model, const RetimeOptions& opt,
                    RetimeReport& rep, DiagEngine& diags) {
  faultpoint("dp.retime");
  rep = RetimeReport{};
  rep.run = true;
  rep.targetNs = opt.targetNs;
  rep.stagesBefore = d.stageCount;

  const std::vector<int> order = topoOrderOps(d);
  const std::vector<int> coneOf = feedbackConeOf(d);
  std::vector<double> delay(d.ops.size(), 0.0);
  for (size_t oi = 0; oi < d.ops.size(); ++oi) {
    delay[oi] = timedOpDelayNs(d, d.ops[oi], model, opt.multStyle);
  }

  const std::vector<double> unit = unsplittableUnits(d, delay, order, coneOf);
  rep.feasible = true;
  for (double u : unit) {
    if (u > opt.targetNs + kEps) rep.feasible = false;
  }

  // 1. Seed: re-stage from scratch against this model (which may differ from
  //    the built-in table the Builder placed with).
  assignStagesGreedy(d, delay, opt.targetNs, /*pipeline=*/true);

  // 2. Merge: fuse adjacent stage pairs whose combined path still fits the
  //    budget. Repeats until no pair fits (loose targets collapse).
  bool mergedAny = true;
  while (mergedAny && d.stageCount > 1) {
    mergedAny = false;
    for (int s = 0; s + 1 < d.stageCount; ++s) {
      std::vector<int> saved(d.ops.size());
      for (size_t oi = 0; oi < d.ops.size(); ++oi) saved[oi] = d.ops[oi].stage;
      for (auto& o : d.ops) {
        if (o.stage > s) o.stage -= 1; // tentatively fuse s+1 into s
      }
      std::vector<double> worst = computeStageDelays(d, delay, order);
      if (worst[static_cast<size_t>(s)] <= opt.targetNs + kEps) {
        d.stageCount -= 1;
        rep.merges += 1;
        mergedAny = true;
        break; // rescan from the front with the new numbering
      }
      for (size_t oi = 0; oi < d.ops.size(); ++oi) d.ops[oi].stage = saved[oi]; // revert
    }
  }

  // 3. Balance: move chain-head ops down (and chain-tail ops up) out of the
  //    critical stage while the global worst-stage delay improves. This
  //    never changes the stage count — it trades slack between neighbors.
  std::vector<std::vector<int>> consumers(d.values.size());
  for (size_t oi = 0; oi < d.ops.size(); ++oi) {
    for (int vid : d.ops[oi].operands) {
      consumers[static_cast<size_t>(vid)].push_back(static_cast<int>(oi));
    }
  }
  std::vector<double> worst = computeStageDelays(d, delay, order);
  for (int iter = 0; iter < opt.maxBalanceIterations; ++iter) {
    int critical = 0;
    for (int s = 1; s < d.stageCount; ++s) {
      if (worst[static_cast<size_t>(s)] > worst[static_cast<size_t>(critical)]) critical = s;
    }
    const double before = worst[static_cast<size_t>(critical)];
    bool moved = false;
    for (int oi : order) {
      DpOp& o = d.ops[static_cast<size_t>(oi)];
      if (o.stage != critical || coneOf[static_cast<size_t>(oi)] >= 0) continue;
      if (o.result < 0 || delay[static_cast<size_t>(oi)] <= 0) continue;
      // Head hoist: every real operand already lives in an earlier stage.
      bool headOk = critical > 0;
      // Tail push: every consumer lives in a later stage.
      bool tailOk = critical + 1 < d.stageCount;
      for (int vid : o.operands) {
        const int def = d.values[static_cast<size_t>(vid)].def;
        if (def < 0 || d.ops[static_cast<size_t>(def)].op == Opcode::Ldc) continue;
        if (d.ops[static_cast<size_t>(def)].stage >= critical) headOk = false;
      }
      for (int c : consumers[static_cast<size_t>(o.result)]) {
        if (d.ops[static_cast<size_t>(c)].stage <= critical) tailOk = false;
      }
      for (int dir = 0; dir < 2 && !moved; ++dir) {
        const bool hoist = dir == 0;
        if (hoist ? !headOk : !tailOk) continue;
        o.stage = hoist ? critical - 1 : critical + 1;
        std::vector<double> trial = computeStageDelays(d, delay, order);
        double trialWorst = 0;
        for (double t : trial) trialWorst = std::max(trialWorst, t);
        if (trialWorst < before - kEps) {
          worst = std::move(trial);
          rep.movedOps += 1;
          moved = true;
        } else {
          o.stage = critical;
        }
      }
      if (moved) break;
    }
    if (!moved) {
      computeStageDelays(d, delay, order); // restore pathDelayNs after trials
      break;
    }
  }

  // Final bookkeeping: stage count, feedback/output stages, statistics.
  int maxStage = 0;
  for (const auto& o : d.ops) maxStage = std::max(maxStage, o.stage);
  d.stageCount = maxStage + 1;
  for (size_t fi = 0; fi < d.feedbacks.size(); ++fi) {
    d.feedbacks[fi].stage = 0;
    for (size_t oi = 0; oi < d.ops.size(); ++oi) {
      if (coneOf[oi] == static_cast<int>(fi)) {
        d.feedbacks[fi].stage = d.ops[oi].stage;
        break;
      }
    }
  }
  for (size_t p = 0; p < d.outputs.size(); ++p) {
    const DpValue& v = d.values[static_cast<size_t>(d.outputs[p].value)];
    d.outputStage[p] = v.def >= 0 ? d.ops[static_cast<size_t>(v.def)].stage : 0;
  }
  recomputePipelineStats(d);

  worst = computeStageDelays(d, delay, order);
  rep.stageDelayNs.assign(worst.begin(), worst.end());
  rep.worstStageNs = 0;
  for (double s : worst) rep.worstStageNs = std::max(rep.worstStageNs, s);
  rep.criticalPathNs = rep.worstStageNs + model.clockOverheadNs;
  rep.fmaxMHz = rep.criticalPathNs > 0 ? 1000.0 / rep.criticalPathNs : 0.0;
  rep.slackNs = opt.targetNs - rep.worstStageNs;
  rep.stagesAfter = d.stageCount;

  // Invariant audit: producers before consumers, cones in one stage. A
  // violation here is a compiler bug, not an input error.
  for (size_t oi = 0; oi < d.ops.size(); ++oi) {
    for (int vid : d.ops[oi].operands) {
      const int def = d.values[static_cast<size_t>(vid)].def;
      if (def < 0 || d.ops[static_cast<size_t>(def)].op == Opcode::Ldc) continue;
      if (d.ops[static_cast<size_t>(def)].stage > d.ops[oi].stage) {
        diags.error({}, fmt("retime: op %0 (stage %1) consumes a stage-%2 value", oi,
                            d.ops[oi].stage, d.ops[static_cast<size_t>(def)].stage));
        return false;
      }
    }
  }
  for (size_t fi = 0; fi < d.feedbacks.size(); ++fi) {
    for (size_t oi = 0; oi < d.ops.size(); ++oi) {
      if (coneOf[oi] == static_cast<int>(fi) && d.ops[oi].stage != d.feedbacks[fi].stage) {
        diags.error({}, fmt("retime: feedback '%0' cone split across stages",
                            d.feedbacks[fi].name));
        return false;
      }
    }
  }
  if (rep.feasible && rep.worstStageNs > opt.targetNs + kEps) {
    diags.error({}, fmt("retime: feasible target %0 ns missed (worst stage %1 ns)",
                        opt.targetNs, rep.worstStageNs));
    return false;
  }
  return true;
}

} // namespace roccc::dp
