#include "roccc/compiler.hpp"

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/transforms.hpp"
#include "mir/lower.hpp"
#include "mir/passes.hpp"
#include "mir/ssa.hpp"
#include "rtl/from_dp.hpp"
#include "support/strings.hpp"
#include "vhdl/emit.hpp"
#include "vhdl/verilog.hpp"

namespace roccc {

CompileResult Compiler::compileSource(const std::string& cSource) const {
  CompileResult r;

  // --- front end --------------------------------------------------------------
  ast::Module m = ast::parse(cSource, r.diags);
  if (r.diags.hasErrors()) return r;
  if (!ast::analyze(m, r.diags)) return r;

  std::string kernelName = options_.kernelName;
  if (kernelName.empty()) {
    if (m.functions.empty()) {
      r.diags.error({}, "no functions in the module");
      return r;
    }
    kernelName = m.functions.back().name;
  }
  ast::Function* kernel = m.findFunction(kernelName);
  if (!kernel) {
    r.diags.error({}, fmt("no kernel named '%0'", kernelName));
    return r;
  }

  // --- loop-level transforms (section 2 / 4.1) ----------------------------------
  // "Function calls will either be inlined or whenever feasible made into a
  // lookup table" (section 2): lookup-table conversion gets first pick —
  // feasible pure unary callees become ROMs, everything left is inlined.
  int luts = 0;
  if (options_.convertCallsToLuts) {
    luts = hlir::convertCallsToLookupTables(m, r.diags, options_.lutMaxIndexBits);
    if (r.diags.hasErrors()) return r;
  }
  const int inlined = hlir::inlineCalls(m, r.diags);
  if (r.diags.hasErrors()) return r;
  const int folded = hlir::constantFold(m, r.diags);
  if (r.diags.hasErrors()) return r;
  kernel = m.findFunction(kernelName);
  const int fused = hlir::fuseAdjacentLoops(m, *kernel, r.diags);
  if (r.diags.hasErrors()) return r;
  int innerUnrolled = 0;
  if (options_.fullUnrollInnerLoops) {
    innerUnrolled = hlir::fullyUnrollInnerLoops(m, *kernel, r.diags, options_.maxInnerUnrollTrip);
    if (r.diags.hasErrors()) return r;
  }
  int unrollFactor = options_.unrollFactor;
  if (options_.autoUnrollSliceBudget > 0) {
    // Area-estimation-driven unrolling (section 2 / ref [13]): largest
    // power-of-two factor whose estimated slice count fits the budget.
    kernel = m.findFunction(kernelName);
    int64_t trips = 0;
    ast::forEachStmt(*kernel->body, [&](const ast::Stmt& s) {
      if (s.kind == ast::StmtKind::For && trips == 0) {
        const auto& f = static_cast<const ast::ForStmt&>(s);
        const auto b = ast::evalConstant(*f.begin);
        const auto e = ast::evalConstant(*f.end);
        if (b && e && *e > *b) trips = (*e - *b + f.step - 1) / f.step;
      }
    });
    if (trips > 1) {
      unrollFactor = hlir::chooseUnrollFactor(*kernel, trips, options_.autoUnrollSliceBudget);
    }
  }
  if (unrollFactor > 1) {
    kernel = m.findFunction(kernelName);
    if (!hlir::unrollInnerLoop(m, *kernel, unrollFactor, r.diags)) return r;
  }
  r.passLog.push_back(fmt("hlir: inlined=%0 lut-converted=%1 const-folds=%2 fused=%3 "
                          "inner-unrolled=%4 unroll-factor=%5",
                          inlined, luts, folded, fused, innerUnrolled, unrollFactor));
  r.transformedSource = ast::printModule(m);

  // --- kernel extraction (section 4.1 / 4.2.1) ------------------------------------
  if (!hlir::extractKernel(m, kernelName, r.kernel, r.diags)) return r;

  // --- back end (section 4.2) -----------------------------------------------------
  if (!mir::lowerToMir(r.kernel.dpModule, r.kernel.dpName, r.mir, r.diags)) return r;
  mir::canonicalizeSideEffects(r.mir);
  mir::buildSSA(r.mir);
  if (options_.optimize) {
    auto log = mir::runStandardPasses(r.mir);
    r.passLog.insert(r.passLog.end(), log.begin(), log.end());
  }
  std::vector<std::string> mirErrors;
  if (!r.mir.verifySSA(mirErrors)) {
    for (const auto& e : mirErrors) r.diags.error({}, "internal: post-pass MIR invalid: " + e);
    return r;
  }

  if (!dp::buildDataPath(r.mir, r.datapath, r.diags, options_.dpOptions)) return r;
  r.passLog.push_back(fmt("datapath: %0 soft + %1 hard nodes, %2 stages, %3 narrowed bits, "
                          "%4 pipeline register bits",
                          r.datapath.softNodeCount, r.datapath.hardNodeCount, r.datapath.stageCount,
                          r.datapath.narrowedBits, r.datapath.pipelineRegisterBits));

  if (!rtl::buildDatapathModule(r.datapath, r.module, r.diags)) return r;

  // --- VHDL (section 4.2.4) ---------------------------------------------------------
  r.vhdl = vhdl::emitDesign(r.datapath, r.module, r.kernel);
  r.verilog = verilog::emitDesign(r.datapath, r.kernel);

  r.ok = !r.diags.hasErrors();
  return r;
}

CosimReport cosimulate(const CompileResult& compiled, const std::string& originalSource,
                       const interp::KernelIO& inputs, rtl::SystemOptions sysOptions) {
  CosimReport rep;

  // Software: the original kernel through the interpreter.
  DiagEngine diags;
  ast::Module m = ast::parse(originalSource, diags);
  if (diags.hasErrors() || !ast::analyze(m, diags)) {
    rep.mismatch = "software reference failed to build: " + diags.dump();
    return rep;
  }
  rep.software = interp::runKernel(m, compiled.kernel.kernelName, inputs);

  // Hardware: cycle-accurate Fig 2 system.
  rtl::System system(compiled.kernel, compiled.datapath, compiled.module, sysOptions);
  rep.hardware = system.run(inputs);
  rep.stats = system.stats();

  // Compare outputs the kernel defines: output arrays, scalar outs,
  // feedback finals.
  rep.match = true;
  for (const auto& st : compiled.kernel.outputs) {
    const auto& hw = rep.hardware.arrays.at(st.arrayName);
    const auto it = rep.software.arrays.find(st.arrayName);
    if (it == rep.software.arrays.end() || it->second.size() != hw.size()) {
      rep.match = false;
      rep.mismatch = fmt("array '%0' size mismatch", st.arrayName);
      return rep;
    }
    for (size_t i = 0; i < hw.size(); ++i) {
      if (hw[i] != it->second[i]) {
        rep.match = false;
        rep.mismatch = fmt("array '%0'[%1]: hw=%2 sw=%3", st.arrayName, i, hw[i], it->second[i]);
        return rep;
      }
    }
  }
  for (const auto& so : compiled.kernel.scalarOutputs) {
    const auto hw = rep.hardware.scalars.find(so.name);
    const auto sw = rep.software.scalars.find(so.name);
    if (hw == rep.hardware.scalars.end() || sw == rep.software.scalars.end() ||
        hw->second != sw->second) {
      rep.match = false;
      rep.mismatch = fmt("scalar '%0': hw=%1 sw=%2", so.name,
                         hw == rep.hardware.scalars.end() ? 0 : hw->second,
                         sw == rep.software.scalars.end() ? 0 : sw->second);
      return rep;
    }
  }
  for (const auto& fb : compiled.kernel.feedbacks) {
    const auto hw = rep.hardware.scalars.find(fb.name);
    const auto sw = rep.software.scalars.find(fb.name);
    if (sw == rep.software.scalars.end()) continue; // local feedback, not visible in sw results
    if (hw == rep.hardware.scalars.end() || hw->second != sw->second) {
      rep.match = false;
      rep.mismatch = fmt("feedback '%0': hw=%1 sw=%2", fb.name,
                         hw == rep.hardware.scalars.end() ? 0 : hw->second, sw->second);
      return rep;
    }
  }
  return rep;
}

} // namespace roccc
