#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "interp/interp.hpp"

namespace roccc::interp {
namespace {

using ast::Module;

Module build(const std::string& src) {
  DiagEngine diags;
  Module m = ast::parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  EXPECT_TRUE(ast::analyze(m, diags)) << diags.dump();
  return m;
}

TEST(Interp, FivetapFirMatchesByHand) {
  Module m = build(R"(
    void fir(const int16 A[21], int16 C[17]) {
      int i;
      for (i = 0; i < 17; i = i + 1) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
      }
    }
  )");
  KernelIO in;
  auto& a = in.arrays["A"];
  for (int i = 0; i < 21; ++i) a.push_back(i * 7 - 30);
  KernelIO out = runKernel(m, "fir", in);
  ASSERT_EQ(out.arrays["C"].size(), 17u);
  for (int i = 0; i < 17; ++i) {
    const int64_t expect = 3 * a[i] + 5 * a[i + 1] + 7 * a[i + 2] + 9 * a[i + 3] - a[i + 4];
    EXPECT_EQ(out.arrays["C"][i], static_cast<int16_t>(expect)) << "at " << i;
  }
}

TEST(Interp, AccumulatorFromPaperFigure4) {
  Module m = build(R"(
    int sum = 0;
    void acc(const int32 A[32]) {
      int i;
      for (i = 0; i < 32; i++) {
        sum = sum + A[i];
      }
    }
  )");
  KernelIO in;
  int64_t expect = 0;
  for (int i = 0; i < 32; ++i) {
    in.arrays["A"].push_back(i * i);
    expect += i * i;
  }
  KernelIO out = runKernel(m, "acc", in);
  EXPECT_EQ(out.scalars["sum"], expect);
}

TEST(Interp, FeedbackMacrosMatchPlainForm) {
  // Fig 4(c) semantics must equal Fig 4(a) semantics in software.
  Module plain = build(R"(
    int sum = 0;
    void acc(const int32 A[8]) {
      int i;
      for (i = 0; i < 8; i++) { sum = sum + A[i]; }
    }
  )");
  Module macro = build(R"(
    int sum = 0;
    void acc(const int32 A[8]) {
      int i;
      int t;
      for (i = 0; i < 8; i++) {
        t = ROCCC_load_prev(sum) + A[i];
        ROCCC_store2next(sum, t);
      }
    }
  )");
  KernelIO in;
  for (int i = 0; i < 8; ++i) in.arrays["A"].push_back(100 - 13 * i);
  EXPECT_EQ(runKernel(plain, "acc", in).scalars["sum"], runKernel(macro, "acc", in).scalars["sum"]);
}

TEST(Interp, IfElseFromPaperFigure5) {
  Module m = build(R"(
    void if_else(int x1, int x2, int* x3, int* x4) {
      int a;
      int c;
      c = x1 - x2;
      if (c < x2)
        a = x1 * x1;
      else
        a = x1 * x2 + 3;
      c = c - a;
      *x3 = c;
      *x4 = a;
      return;
    }
  )");
  auto run = [&](int x1, int x2) {
    KernelIO in;
    in.scalars["x1"] = x1;
    in.scalars["x2"] = x2;
    return runKernel(m, "if_else", in);
  };
  {
    // c = 1 - 5 = -4 < 5 -> a = 1; c = -4 - 1 = -5
    KernelIO out = run(1, 5);
    EXPECT_EQ(out.scalars["x4"], 1);
    EXPECT_EQ(out.scalars["x3"], -5);
  }
  {
    // c = 9 - 2 = 7, not < 2 -> a = 9*2+3 = 21; c = 7-21 = -14
    KernelIO out = run(9, 2);
    EXPECT_EQ(out.scalars["x4"], 21);
    EXPECT_EQ(out.scalars["x3"], -14);
  }
}

TEST(Interp, NarrowTypesTruncateOnAssignment) {
  Module m = build("void k(int a, int8* o) { *o = a; }");
  KernelIO in;
  in.scalars["a"] = 0x1FF; // 511 -> int8 -1
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], -1);
}

TEST(Interp, UnsignedDivide) {
  Module m = build("void udiv(uint8 n, uint8 d, uint8* q) { *q = n / d; }");
  KernelIO in;
  in.scalars["n"] = 200;
  in.scalars["d"] = 7;
  EXPECT_EQ(runKernel(m, "udiv", in).scalars["q"], 28);
  in.scalars["d"] = 0;
  EXPECT_EQ(runKernel(m, "udiv", in).scalars["q"], 255); // divider convention
}

TEST(Interp, NestedLoops2D) {
  Module m = build(R"(
    void smooth(const int16 X[4][6], int16 Y[4][6]) {
      int i;
      int j;
      for (i = 0; i < 4; i++) {
        for (j = 0; j < 6; j++) {
          Y[i][j] = X[i][j] + i * 10 + j;
        }
      }
    }
  )");
  KernelIO in;
  for (int i = 0; i < 24; ++i) in.arrays["X"].push_back(i);
  KernelIO out = runKernel(m, "smooth", in);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 6; ++j)
      EXPECT_EQ(out.arrays["Y"][i * 6 + j], in.arrays["X"][i * 6 + j] + i * 10 + j);
}

TEST(Interp, UserFunctionCallWithOutParams) {
  Module m = build(R"(
    void helper(int a, int b, int* s) { *s = a * b + 1; }
    void k(int x, int* o) {
      int t;
      t = 0;
      helper(x, x + 1, t);
      *o = t;
    }
  )");
  KernelIO in;
  in.scalars["x"] = 6;
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], 43);
}

TEST(Interp, LookupTable) {
  Module m = build(R"(
    const int16 T[8] = {5, 10, 15, 20, 25, 30, 35, 40};
    void k(uint3 i, int16* o) { *o = ROCCC_lookup(T, i); }
  )");
  for (int i = 0; i < 8; ++i) {
    KernelIO in;
    in.scalars["i"] = i;
    EXPECT_EQ(runKernel(m, "k", in).scalars["o"], 5 * (i + 1));
  }
}

TEST(Interp, CosIntrinsicEndpoints) {
  Module m = build("void k(uint10 p, int16* o) { *o = ROCCC_cos(p); }");
  KernelIO in;
  in.scalars["p"] = 0;
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], 32767); // cos(0) = ~1.0 in Q15
  in.scalars["p"] = 512;
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], -32767); // cos(pi)
  in.scalars["p"] = 256;
  EXPECT_NEAR(runKernel(m, "k", in).scalars["o"], 0, 2); // cos(pi/2)
}

TEST(Interp, BitIntrinsics) {
  Module m = build(R"(
    void k(uint8 x, uint8* o) {
      uint4 hi;
      uint4 lo;
      hi = ROCCC_bit_select(x, 7, 4);
      lo = ROCCC_bit_select(x, 3, 0);
      *o = ROCCC_bit_concat(lo, hi);
    }
  )");
  KernelIO in;
  in.scalars["x"] = 0xA5;
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], 0x5A); // nibble swap
}

TEST(Interp, OutOfBoundsDynamicIndexThrows) {
  Module m = build(R"(
    void k(const int8 A[4], int i, int8* o) { *o = A[i]; }
  )");
  KernelIO in;
  in.arrays["A"] = {1, 2, 3, 4};
  in.scalars["i"] = 9;
  EXPECT_THROW(runKernel(m, "k", in), InterpError);
}

TEST(Interp, StepLimitStopsRunaway) {
  Module m = build(R"(
    void k(const int32 A[4], int32* o) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < 1000000; i++) { s = s + A[i % 4]; }
      *o = s;
    }
  )");
  Interpreter interp(m, /*stepLimit=*/1000);
  KernelIO in;
  in.arrays["A"] = {1, 2, 3, 4};
  EXPECT_THROW(interp.run("k", in), InterpError);
}

TEST(Interp, ShortCircuitLogic) {
  // (d != 0 && n / d > 2): the division only happens when d != 0.
  Module m = build(R"(
    void k(int n, int d, int* o) {
      if (d != 0 && n / d > 2) { *o = 1; } else { *o = 0; }
    }
  )");
  KernelIO in;
  in.scalars["n"] = 10;
  in.scalars["d"] = 0;
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], 0);
  in.scalars["d"] = 3;
  EXPECT_EQ(runKernel(m, "k", in).scalars["o"], 1);
}

} // namespace
} // namespace roccc::interp
