#include "synth/timing.hpp"

#include <cmath>
#include <sstream>
#include <vector>

namespace roccc::synth {

namespace {

const char* const kPrimitiveNames[kPrimitiveCount] = {
    "add", "mul-lut", "mul18", "div", "logic", "shift", "cmp", "mux", "reg", "rom",
};

/// Closed-form Virtex-II-class characterization, evaluated densely into the
/// breakpoint table. These formulas are the single source of truth the old
/// src/dp/datapath.cpp and src/synth/estimate.cpp constants collapsed into.
PrimitiveCost virtex2Row(Primitive p, int width) {
  const double w = width;
  PrimitiveCost r;
  switch (p) {
    case Primitive::Add: // LUT + MUXCY/XORCY carry chain
      r.delayNs = 0.62 + 0.042 * w;
      r.lut4 = w;
      break;
    case Primitive::MulLut: // array multiplier, w x w
      r.delayNs = 2.8 + 0.11 * w;
      r.lut4 = 0.55 * w * w;
      break;
    case Primitive::Mul18: // MULT18X18 blocks, w x w
      r.delayNs = width <= 18 ? 4.9 : 8.5;
      r.mult18 = static_cast<double>((width + 16) / 17) * ((width + 16) / 17);
      break;
    case Primitive::Div: // restoring array: one subtract-mux row per bit
      r.delayNs = w * (0.62 + 0.042 * w);
      r.lut4 = w * (w + 2);
      break;
    case Primitive::Logic: // two bits of 2-input logic per LUT4
      r.delayNs = 0.44;
      r.lut4 = (width + 1) / 2;
      break;
    case Primitive::Shift: { // barrel shifter, ceil(log2(w)) mux levels
      const int levels = static_cast<int>(std::ceil(std::log2(std::max(2.0, w))));
      r.delayNs = 0.44 * levels + 0.3;
      r.lut4 = w * levels / 2.0;
      break;
    }
    case Primitive::Cmp: // carry chain across the operands, 1-bit result
      r.delayNs = 0.55 + 0.035 * w;
      r.lut4 = (width + 1) / 2 + 1;
      break;
    case Primitive::Mux: // 2:1 per bit (LUT3)
      r.delayNs = 0.5;
      r.lut4 = w;
      break;
    case Primitive::Reg: // clock-to-out folded into clockOverheadNs
      r.delayNs = 0;
      r.ff = w;
      break;
    case Primitive::Rom: // generic table read; area priced structurally
      r.delayNs = 2.0;
      break;
  }
  return r;
}

void deriveEnergy(const TimingModel& m, PrimitiveCost& r) {
  r.dynamicPj = m.resourceDynamicPj(r.lut4, r.ff, r.mult18, r.bram);
  r.leakageUw = m.resourceLeakageUw(r.lut4, r.ff, r.mult18, r.bram);
}

PrimitiveCost lerp(const PrimitiveCost& a, const PrimitiveCost& b, double t) {
  PrimitiveCost r;
  r.delayNs = a.delayNs + (b.delayNs - a.delayNs) * t;
  r.latencyCycles = t < 0.5 ? a.latencyCycles : b.latencyCycles;
  r.lut4 = a.lut4 + (b.lut4 - a.lut4) * t;
  r.ff = a.ff + (b.ff - a.ff) * t;
  r.mult18 = a.mult18 + (b.mult18 - a.mult18) * t;
  r.bram = a.bram + (b.bram - a.bram) * t;
  r.dynamicPj = a.dynamicPj + (b.dynamicPj - a.dynamicPj) * t;
  r.leakageUw = a.leakageUw + (b.leakageUw - a.leakageUw) * t;
  return r;
}

} // namespace

const char* primitiveName(Primitive p) { return kPrimitiveNames[static_cast<int>(p)]; }

bool primitiveByName(const std::string& name, Primitive& out) {
  for (int i = 0; i < kPrimitiveCount; ++i) {
    if (name == kPrimitiveNames[i]) {
      out = static_cast<Primitive>(i);
      return true;
    }
  }
  return false;
}

double TimingModel::resourceDynamicPj(double lut4, double ff, double mult18, double bram) const {
  const double capPf = capLutPf * lut4 + capFfPf * ff + capMult18Pf * mult18 + capBramPf * bram;
  return capPf * coreVoltage * coreVoltage; // pF * V^2 = pJ
}

double TimingModel::resourceLeakageUw(double lut4, double ff, double mult18, double bram) const {
  return leakLutUw * lut4 + leakFfUw * ff + leakMult18Uw * mult18 + leakBramUw * bram;
}

const TimingModel& TimingModel::virtex2() {
  static const TimingModel model = [] {
    TimingModel m;
    // Dense rows over the width range the compiler produces (values are at
    // most 64 bits); interpolation is then exact for every reachable width.
    for (int p = 0; p < kPrimitiveCount; ++p) {
      for (int w = 1; w <= 64; ++w) {
        PrimitiveCost r = virtex2Row(static_cast<Primitive>(p), w);
        deriveEnergy(m, r);
        m.rows[static_cast<size_t>(p)][w] = r;
      }
    }
    return m;
  }();
  return model;
}

PrimitiveCost TimingModel::cost(Primitive p, int width) const {
  const auto& table = rows[static_cast<size_t>(p)];
  if (table.empty()) return {};
  auto hi = table.lower_bound(width);
  if (hi == table.end()) return std::prev(table.end())->second; // clamp above
  if (hi->first == width || hi == table.begin()) return hi->second; // exact / clamp below
  const auto lo = std::prev(hi);
  const double t = static_cast<double>(width - lo->first) / (hi->first - lo->first);
  return lerp(lo->second, hi->second, t);
}

bool TimingModel::parse(const std::string& text, TimingModel& out, std::string& error) {
  out = virtex2();
  std::vector<char> overridden(kPrimitiveCount, 0);
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  auto fail = [&](const std::string& msg) {
    error = "line " + std::to_string(lineNo) + ": " + msg;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue; // blank / comment
    double* scalar = nullptr;
    if (key == "model") {
      if (!(ls >> out.name)) return fail("'model' needs a name");
      continue;
    } else if (key == "clock-overhead-ns") {
      scalar = &out.clockOverheadNs;
    } else if (key == "routing-per-hop-ns") {
      scalar = &out.routingPerHopNs;
    } else if (key == "core-voltage") {
      scalar = &out.coreVoltage;
    } else if (key == "bram-access-ns") {
      scalar = &out.bramAccessNs;
    } else if (key == "rom-mux-level-ns") {
      scalar = &out.romMuxLevelNs;
    } else if (key == "cap-lut-pf") {
      scalar = &out.capLutPf;
    } else if (key == "cap-ff-pf") {
      scalar = &out.capFfPf;
    } else if (key == "cap-mult18-pf") {
      scalar = &out.capMult18Pf;
    } else if (key == "cap-bram-pf") {
      scalar = &out.capBramPf;
    } else if (key == "leak-lut-uw") {
      scalar = &out.leakLutUw;
    } else if (key == "leak-ff-uw") {
      scalar = &out.leakFfUw;
    } else if (key == "leak-mult18-uw") {
      scalar = &out.leakMult18Uw;
    } else if (key == "leak-bram-uw") {
      scalar = &out.leakBramUw;
    }
    if (scalar) {
      if (!(ls >> *scalar)) return fail("'" + key + "' needs a numeric value");
      if (!std::isfinite(*scalar) || *scalar < 0) return fail("'" + key + "' must be >= 0");
      continue;
    }
    Primitive p;
    if (!primitiveByName(key, p)) return fail("unknown directive or primitive '" + key + "'");
    int width = 0;
    PrimitiveCost r;
    if (!(ls >> width >> r.delayNs >> r.latencyCycles >> r.lut4 >> r.ff)) {
      return fail("row needs: <primitive> <width> <delay-ns> <latency> <lut4> <ff>");
    }
    if (width < 1 || width > 4096) return fail("width out of range");
    if (!std::isfinite(r.delayNs) || r.delayNs < 0 || r.latencyCycles < 0 || r.lut4 < 0 ||
        r.ff < 0) {
      return fail("row values must be >= 0");
    }
    bool haveEnergy = false;
    if (ls >> r.mult18 >> r.bram) {
      if (r.mult18 < 0 || r.bram < 0) return fail("row values must be >= 0");
      if (ls >> r.dynamicPj >> r.leakageUw) {
        if (r.dynamicPj < 0 || r.leakageUw < 0) return fail("row values must be >= 0");
        haveEnergy = true;
      }
    }
    std::string trailing;
    if (ls >> trailing) return fail("trailing garbage '" + trailing + "'");
    if (!haveEnergy) deriveEnergy(out, r);
    auto& table = out.rows[static_cast<size_t>(p)];
    if (!overridden[static_cast<size_t>(static_cast<int>(p))]) {
      table.clear(); // first row for a primitive replaces its built-in rows
      overridden[static_cast<size_t>(static_cast<int>(p))] = 1;
    }
    table[width] = r;
  }
  for (int p = 0; p < kPrimitiveCount; ++p) {
    if (out.rows[static_cast<size_t>(p)].empty()) {
      lineNo = 0;
      return fail(std::string("primitive '") + kPrimitiveNames[p] + "' has no rows");
    }
  }
  error.clear();
  return true;
}

std::string TimingModel::dump() const {
  std::ostringstream os;
  os << "model " << name << "\n";
  os << "clock-overhead-ns " << clockOverheadNs << "\n";
  os << "routing-per-hop-ns " << routingPerHopNs << "\n";
  os << "core-voltage " << coreVoltage << "\n";
  os << "bram-access-ns " << bramAccessNs << "\n";
  os << "rom-mux-level-ns " << romMuxLevelNs << "\n";
  os << "cap-lut-pf " << capLutPf << "\ncap-ff-pf " << capFfPf << "\ncap-mult18-pf "
     << capMult18Pf << "\ncap-bram-pf " << capBramPf << "\n";
  os << "leak-lut-uw " << leakLutUw << "\nleak-ff-uw " << leakFfUw << "\nleak-mult18-uw "
     << leakMult18Uw << "\nleak-bram-uw " << leakBramUw << "\n";
  for (int p = 0; p < kPrimitiveCount; ++p) {
    for (const auto& [w, r] : rows[static_cast<size_t>(p)]) {
      os << kPrimitiveNames[p] << ' ' << w << ' ' << r.delayNs << ' ' << r.latencyCycles << ' '
         << r.lut4 << ' ' << r.ff << ' ' << r.mult18 << ' ' << r.bram << ' ' << r.dynamicPj
         << ' ' << r.leakageUw << "\n";
    }
  }
  return os.str();
}

} // namespace roccc::synth
