#include "frontend/parser.hpp"

#include <cassert>

#include "frontend/lexer.hpp"
#include "support/budget.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::ast {

std::optional<ScalarType> parseTypeName(const std::string& name) {
  auto widthFrom = [](const std::string& s, size_t prefixLen) -> std::optional<int> {
    if (s.size() <= prefixLen) return std::nullopt;
    int w = 0;
    for (size_t i = prefixLen; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
      w = w * 10 + (s[i] - '0');
      if (w > 64) return std::nullopt;
    }
    return w >= 1 ? std::optional<int>(w) : std::nullopt;
  };
  if (startsWith(name, "uint")) {
    if (auto w = widthFrom(name, 4)) return ScalarType::make(*w, false);
    return std::nullopt;
  }
  if (startsWith(name, "int")) {
    if (auto w = widthFrom(name, 3)) return ScalarType::make(*w, true);
    return std::nullopt;
  }
  return std::nullopt;
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, DiagEngine& diags) : toks_(std::move(toks)), diags_(diags) {}

  Module parseModule() {
    Module m;
    while (!at(TokKind::End)) {
      const size_t before = pos_;
      if (at(TokKind::KwVoid)) {
        m.functions.push_back(parseFunction());
      } else {
        parseGlobal(m);
      }
      if (pos_ == before) {
        // No progress: swallow one token to avoid an infinite loop.
        error(cur().loc, fmt("unexpected %0 at top level", tokKindName(cur().kind)));
        advance();
      }
      if (diags_.errorCount() > 50) break;
    }
    return m;
  }

 private:
  std::vector<Token> toks_;
  DiagEngine& diags_;
  size_t pos_ = 0;
  int depth_ = 0;

  // Recursion-depth governor: parseBinary/parseUnary/parseStmt recurse on
  // input shape, so a 10k-deep expression would otherwise overflow the stack
  // before any diagnostic fires. The budget's maxDepth cap turns that into a
  // contained ResourceExceeded.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      budgetCheckDepth(++p_.depth_, "parse");
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& p_;
  };

  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    const size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(TokKind k) const { return cur().kind == k; }
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool accept(TokKind k) {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }
  void expect(TokKind k, const char* context) {
    if (!accept(k)) {
      error(cur().loc, fmt("expected %0 %1, found %2", tokKindName(k), context, tokKindName(cur().kind)));
    }
  }
  void error(SourceLoc loc, std::string msg) { diags_.error(loc, std::move(msg)); }

  /// Skips forward to just after the next semicolon / closing brace, for
  /// error recovery.
  void synchronize() {
    while (!at(TokKind::End)) {
      if (accept(TokKind::Semicolon)) return;
      if (at(TokKind::RBrace)) return;
      advance();
    }
  }

  // --- types ------------------------------------------------------------

  bool atTypeStart() const {
    switch (cur().kind) {
      case TokKind::KwInt:
      case TokKind::KwUnsigned:
      case TokKind::KwSigned:
      case TokKind::KwChar:
      case TokKind::KwShort:
      case TokKind::KwLong:
        return true;
      case TokKind::Identifier:
        return parseTypeName(cur().text).has_value();
      default:
        return false;
    }
  }

  /// Parses a scalar type spelling. Standard C spellings map onto the
  /// promotion widths: char=8, short=16, int/long=32.
  ScalarType parseScalarType() {
    bool sawUnsigned = false;
    bool sawSigned = false;
    if (accept(TokKind::KwUnsigned))
      sawUnsigned = true;
    else if (accept(TokKind::KwSigned))
      sawSigned = true;
    (void)sawSigned;
    if (accept(TokKind::KwChar)) return ScalarType::make(8, !sawUnsigned);
    if (accept(TokKind::KwShort)) {
      accept(TokKind::KwInt);
      return ScalarType::make(16, !sawUnsigned);
    }
    if (accept(TokKind::KwLong)) {
      accept(TokKind::KwInt);
      return ScalarType::make(32, !sawUnsigned);
    }
    if (accept(TokKind::KwInt)) return ScalarType::make(32, !sawUnsigned);
    if (at(TokKind::Identifier)) {
      if (auto t = parseTypeName(cur().text)) {
        if (sawUnsigned || sawSigned) error(cur().loc, "cannot combine signed/unsigned with sized type alias");
        advance();
        return *t;
      }
    }
    if (sawUnsigned) return ScalarType::uintTy(); // bare 'unsigned'
    error(cur().loc, fmt("expected type name, found %0", tokKindName(cur().kind)));
    return ScalarType::intTy();
  }

  // --- expressions --------------------------------------------------------

  int binOpPrecedence(TokKind k) const {
    switch (k) {
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Lt:
      case TokKind::Le:
      case TokKind::Gt:
      case TokKind::Ge: return 7;
      case TokKind::EqEq:
      case TokKind::NotEq: return 6;
      case TokKind::Amp: return 5;
      case TokKind::Caret: return 4;
      case TokKind::Pipe: return 3;
      case TokKind::AmpAmp: return 2;
      case TokKind::PipePipe: return 1;
      default: return -1;
    }
  }

  BinOp tokToBinOp(TokKind k) const {
    switch (k) {
      case TokKind::Star: return BinOp::Mul;
      case TokKind::Slash: return BinOp::Div;
      case TokKind::Percent: return BinOp::Rem;
      case TokKind::Plus: return BinOp::Add;
      case TokKind::Minus: return BinOp::Sub;
      case TokKind::Shl: return BinOp::Shl;
      case TokKind::Shr: return BinOp::Shr;
      case TokKind::Lt: return BinOp::Lt;
      case TokKind::Le: return BinOp::Le;
      case TokKind::Gt: return BinOp::Gt;
      case TokKind::Ge: return BinOp::Ge;
      case TokKind::EqEq: return BinOp::Eq;
      case TokKind::NotEq: return BinOp::Ne;
      case TokKind::Amp: return BinOp::And;
      case TokKind::Caret: return BinOp::Xor;
      case TokKind::Pipe: return BinOp::Or;
      case TokKind::AmpAmp: return BinOp::LAnd;
      case TokKind::PipePipe: return BinOp::LOr;
      default:
        throw InternalCompilerError(fmt("parser: token %0 has a binary precedence but no BinOp",
                                        tokKindName(k)));
    }
  }

  ExprPtr parseExpr() { return parseBinary(0); }

  ExprPtr parseBinary(int minPrec) {
    const DepthGuard guard(*this);
    ExprPtr lhs = parseUnary();
    for (;;) {
      const int prec = binOpPrecedence(cur().kind);
      if (prec < 0 || prec < minPrec) return lhs;
      const BinOp op = tokToBinOp(cur().kind);
      const SourceLoc loc = cur().loc;
      advance();
      ExprPtr rhs = parseBinary(prec + 1);
      auto b = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
      b->loc = loc;
      lhs = std::move(b);
    }
  }

  ExprPtr parseUnary() {
    const DepthGuard guard(*this);
    const SourceLoc loc = cur().loc;
    if (accept(TokKind::Minus)) {
      auto u = std::make_unique<UnaryExpr>(UnOp::Neg, parseUnary());
      u->loc = loc;
      return u;
    }
    if (accept(TokKind::Tilde)) {
      auto u = std::make_unique<UnaryExpr>(UnOp::BitNot, parseUnary());
      u->loc = loc;
      return u;
    }
    if (accept(TokKind::Bang)) {
      auto u = std::make_unique<UnaryExpr>(UnOp::LogicalNot, parseUnary());
      u->loc = loc;
      return u;
    }
    if (accept(TokKind::Plus)) return parseUnary();
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const SourceLoc loc = cur().loc;
    if (at(TokKind::IntLiteral)) {
      auto e = std::make_unique<IntLitExpr>(cur().intValue);
      e->loc = loc;
      advance();
      return e;
    }
    if (at(TokKind::LParen)) {
      // Cast '(type) expr' vs parenthesized expression.
      const Token& next = peek(1);
      const bool typeNext =
          next.kind == TokKind::KwInt || next.kind == TokKind::KwUnsigned || next.kind == TokKind::KwSigned ||
          next.kind == TokKind::KwChar || next.kind == TokKind::KwShort || next.kind == TokKind::KwLong ||
          (next.kind == TokKind::Identifier && parseTypeName(next.text).has_value() &&
           (peek(2).kind == TokKind::RParen));
      if (typeNext) {
        advance(); // (
        const ScalarType to = parseScalarType();
        expect(TokKind::RParen, "after cast type");
        auto e = std::make_unique<CastExpr>(to, parseUnary(), /*implicit=*/false);
        e->loc = loc;
        return e;
      }
      advance();
      ExprPtr inner = parseExpr();
      expect(TokKind::RParen, "to close parenthesized expression");
      return inner;
    }
    if (at(TokKind::Identifier)) {
      const std::string name = cur().text;
      advance();
      if (at(TokKind::LParen)) {
        advance();
        auto call = std::make_unique<CallExpr>();
        call->callee = name;
        call->loc = loc;
        if (!at(TokKind::RParen)) {
          do {
            call->args.push_back(parseExpr());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "to close call argument list");
        return call;
      }
      if (at(TokKind::LBracket)) {
        auto a = std::make_unique<ArrayRefExpr>();
        a->name = name;
        a->loc = loc;
        while (accept(TokKind::LBracket)) {
          a->indices.push_back(parseExpr());
          expect(TokKind::RBracket, "to close array index");
        }
        return a;
      }
      auto v = std::make_unique<VarRefExpr>(name);
      v->loc = loc;
      return v;
    }
    error(loc, fmt("expected expression, found %0", tokKindName(cur().kind)));
    advance();
    auto e = std::make_unique<IntLitExpr>(0);
    e->loc = loc;
    return e;
  }

  // --- statements ----------------------------------------------------------

  StmtPtr parseStmt() {
    const DepthGuard guard(*this);
    const SourceLoc loc = cur().loc;
    if (at(TokKind::LBrace)) return parseBlock();
    if (at(TokKind::KwReturn)) {
      advance();
      expect(TokKind::Semicolon, "after return");
      auto s = std::make_unique<ReturnStmt>();
      s->loc = loc;
      return s;
    }
    if (at(TokKind::KwIf)) return parseIf();
    if (at(TokKind::KwFor)) return parseFor();
    if (at(TokKind::KwConst) || atTypeStart()) return parseDecl();
    return parseExprStmt();
  }

  StmtPtr parseBlock() {
    auto block = std::make_unique<BlockStmt>();
    block->loc = cur().loc;
    expect(TokKind::LBrace, "to open block");
    while (!at(TokKind::RBrace) && !at(TokKind::End)) {
      const size_t before = pos_;
      block->stmts.push_back(parseStmt());
      if (pos_ == before) {
        advance(); // guarantee progress under errors
      }
    }
    expect(TokKind::RBrace, "to close block");
    return block;
  }

  StmtPtr parseDecl() {
    auto d = std::make_unique<DeclStmt>();
    d->loc = cur().loc;
    d->var.loc = d->loc;
    d->var.isConst = accept(TokKind::KwConst);
    d->var.type.scalar = parseScalarType();
    d->var.storage = Storage::Local;
    if (!at(TokKind::Identifier)) {
      error(cur().loc, "expected variable name in declaration");
      synchronize();
      return d;
    }
    d->var.name = cur().text;
    advance();
    while (accept(TokKind::LBracket)) {
      ExprPtr dim = parseExpr();
      auto v = evalConstant(*dim);
      if (!v || *v <= 0) {
        error(d->loc, "array dimension must be a positive constant");
        d->var.type.dims.push_back(1);
      } else {
        d->var.type.dims.push_back(*v);
      }
      expect(TokKind::RBracket, "to close array dimension");
    }
    if (accept(TokKind::Assign)) {
      if (at(TokKind::LBrace)) {
        advance();
        do {
          ExprPtr v = parseExpr();
          auto cv = evalConstant(*v);
          if (!cv) error(v->loc, "array initializer element must be constant");
          d->var.init.push_back(cv.value_or(0));
        } while (accept(TokKind::Comma));
        expect(TokKind::RBrace, "to close initializer list");
      } else {
        d->init = parseExpr();
      }
    }
    expect(TokKind::Semicolon, "after declaration");
    return d;
  }

  LValue parseLValue() {
    LValue lv;
    if (accept(TokKind::Star)) lv.kind = LValue::Kind::Deref;
    if (!at(TokKind::Identifier)) {
      error(cur().loc, "expected lvalue");
      return lv;
    }
    lv.name = cur().text;
    advance();
    if (at(TokKind::LBracket)) {
      if (lv.kind == LValue::Kind::Deref) error(cur().loc, "cannot index a dereferenced scalar");
      lv.kind = LValue::Kind::ArrayElem;
      while (accept(TokKind::LBracket)) {
        lv.indices.push_back(parseExpr());
        expect(TokKind::RBracket, "to close array index");
      }
    }
    return lv;
  }

  /// Parses `lhs = expr`, `lhs += expr`, `lhs -= expr`, `x++`, `x--`, or a
  /// bare call. Compound forms are desugared to plain assignments.
  StmtPtr parseExprStmt() {
    const SourceLoc loc = cur().loc;
    // A bare call statement: ident '(' ...
    if (at(TokKind::Identifier) && peek(1).kind == TokKind::LParen) {
      auto s = std::make_unique<CallStmt>();
      s->loc = loc;
      s->call = parsePrimary();
      expect(TokKind::Semicolon, "after call statement");
      return s;
    }
    LValue lv = parseLValue();
    auto makeVarRef = [&]() {
      auto v = std::make_unique<VarRefExpr>(lv.name);
      v->loc = loc;
      return v;
    };
    auto s = std::make_unique<AssignStmt>();
    s->loc = loc;
    if (accept(TokKind::Assign)) {
      s->value = parseExpr();
    } else if (accept(TokKind::PlusAssign)) {
      s->value = std::make_unique<BinaryExpr>(BinOp::Add, makeVarRef(), parseExpr());
    } else if (accept(TokKind::MinusAssign)) {
      s->value = std::make_unique<BinaryExpr>(BinOp::Sub, makeVarRef(), parseExpr());
    } else if (accept(TokKind::PlusPlus)) {
      s->value = std::make_unique<BinaryExpr>(BinOp::Add, makeVarRef(), std::make_unique<IntLitExpr>(1));
    } else if (accept(TokKind::MinusMinus)) {
      s->value = std::make_unique<BinaryExpr>(BinOp::Sub, makeVarRef(), std::make_unique<IntLitExpr>(1));
    } else {
      error(cur().loc, fmt("expected assignment operator, found %0", tokKindName(cur().kind)));
      synchronize();
      s->value = std::make_unique<IntLitExpr>(0);
      s->target = std::move(lv);
      return s;
    }
    s->target = std::move(lv);
    expect(TokKind::Semicolon, "after assignment");
    return s;
  }

  StmtPtr parseIf() {
    auto s = std::make_unique<IfStmt>();
    s->loc = cur().loc;
    expect(TokKind::KwIf, "");
    expect(TokKind::LParen, "after 'if'");
    s->cond = parseExpr();
    expect(TokKind::RParen, "after if condition");
    s->thenBody = parseStmt();
    if (accept(TokKind::KwElse)) s->elseBody = parseStmt();
    return s;
  }

  /// Accepts the canonical counted-loop shapes:
  ///   for ([type] i = E0; i < E1; i = i + C)   (also <=, +=, ++)
  StmtPtr parseFor() {
    auto f = std::make_unique<ForStmt>();
    f->loc = cur().loc;
    expect(TokKind::KwFor, "");
    expect(TokKind::LParen, "after 'for'");

    // init
    std::optional<ScalarType> declType;
    if (atTypeStart()) declType = parseScalarType();
    (void)declType; // induction variables are int32 in the subset
    if (!at(TokKind::Identifier)) {
      error(cur().loc, "expected induction variable in for-init");
      synchronize();
      f->begin = std::make_unique<IntLitExpr>(0);
      f->end = std::make_unique<IntLitExpr>(0);
      f->body = std::make_unique<BlockStmt>();
      return f;
    }
    f->inductionVar = cur().text;
    advance();
    expect(TokKind::Assign, "in for-init");
    f->begin = parseExpr();
    expect(TokKind::Semicolon, "after for-init");

    // condition: i < E or i <= E
    bool inclusive = false;
    if (at(TokKind::Identifier) && cur().text == f->inductionVar) {
      advance();
      if (accept(TokKind::Lt)) {
        inclusive = false;
      } else if (accept(TokKind::Le)) {
        inclusive = true;
      } else {
        error(cur().loc, "for condition must be 'i < bound' or 'i <= bound'");
      }
      f->end = parseExpr();
      if (inclusive) {
        f->end = std::make_unique<BinaryExpr>(BinOp::Add, std::move(f->end), std::make_unique<IntLitExpr>(1));
      }
    } else {
      error(cur().loc, "for condition must test the induction variable");
      f->end = std::make_unique<IntLitExpr>(0);
      synchronize();
    }
    expect(TokKind::Semicolon, "after for-condition");

    // step: i = i + C | i += C | i++ | ++i
    f->step = 1;
    if (accept(TokKind::PlusPlus)) {
      if (at(TokKind::Identifier) && cur().text == f->inductionVar) advance();
    } else if (at(TokKind::Identifier) && cur().text == f->inductionVar) {
      advance();
      if (accept(TokKind::PlusPlus)) {
        f->step = 1;
      } else if (accept(TokKind::PlusAssign)) {
        ExprPtr stepE = parseExpr();
        auto v = evalConstant(*stepE);
        if (!v || *v <= 0)
          error(f->loc, "for step must be a positive constant");
        else
          f->step = *v;
      } else if (accept(TokKind::Assign)) {
        // i = i + C
        ExprPtr e = parseExpr();
        bool ok = false;
        if (e->kind == ExprKind::Binary) {
          auto& b = static_cast<BinaryExpr&>(*e);
          if (b.op == BinOp::Add && b.lhs->kind == ExprKind::VarRef &&
              static_cast<VarRefExpr&>(*b.lhs).name == f->inductionVar) {
            if (auto v = evalConstant(*b.rhs); v && *v > 0) {
              f->step = *v;
              ok = true;
            }
          }
        }
        if (!ok) error(f->loc, "for step must be 'i = i + <positive constant>'");
      } else {
        error(cur().loc, "unsupported for-step form");
      }
    } else {
      error(cur().loc, "for step must update the induction variable");
    }
    expect(TokKind::RParen, "after for header");
    f->body = parseStmt();
    return f;
  }

  // --- top level -------------------------------------------------------------

  void parseGlobal(Module& m) {
    VarDecl g;
    g.loc = cur().loc;
    g.storage = Storage::Global;
    g.isConst = accept(TokKind::KwConst);
    if (!atTypeStart()) {
      error(cur().loc, "expected type in global declaration");
      synchronize();
      return;
    }
    g.type.scalar = parseScalarType();
    if (!at(TokKind::Identifier)) {
      error(cur().loc, "expected global name");
      synchronize();
      return;
    }
    g.name = cur().text;
    advance();
    while (accept(TokKind::LBracket)) {
      ExprPtr dim = parseExpr();
      auto v = evalConstant(*dim);
      if (!v || *v <= 0) {
        error(g.loc, "array dimension must be a positive constant");
        g.type.dims.push_back(1);
      } else {
        g.type.dims.push_back(*v);
      }
      expect(TokKind::RBracket, "to close array dimension");
    }
    if (accept(TokKind::Assign)) {
      if (accept(TokKind::LBrace)) {
        do {
          ExprPtr v = parseExpr();
          auto cv = evalConstant(*v);
          if (!cv) error(v->loc, "global initializer element must be constant");
          g.init.push_back(cv.value_or(0));
        } while (accept(TokKind::Comma));
        expect(TokKind::RBrace, "to close initializer list");
      } else {
        ExprPtr v = parseExpr();
        auto cv = evalConstant(*v);
        if (!cv) error(v->loc, "global initializer must be constant");
        g.init.push_back(cv.value_or(0));
      }
    }
    expect(TokKind::Semicolon, "after global declaration");
    m.globals.push_back(std::move(g));
  }

  Function parseFunction() {
    Function f;
    f.loc = cur().loc;
    expect(TokKind::KwVoid, "at function start");
    if (!at(TokKind::Identifier)) {
      error(cur().loc, "expected function name");
      synchronize();
      return f;
    }
    f.name = cur().text;
    advance();
    expect(TokKind::LParen, "after function name");
    if (!at(TokKind::RParen)) {
      do {
        VarDecl p;
        p.loc = cur().loc;
        p.storage = Storage::Param;
        p.isConst = accept(TokKind::KwConst);
        p.type.scalar = parseScalarType();
        if (accept(TokKind::Star)) p.mode = ParamMode::Out;
        if (!at(TokKind::Identifier)) {
          error(cur().loc, "expected parameter name");
          break;
        }
        p.name = cur().text;
        advance();
        while (accept(TokKind::LBracket)) {
          if (at(TokKind::RBracket)) {
            error(cur().loc, "array parameters must have constant dimensions in the ROCCC subset");
            p.type.dims.push_back(1);
          } else {
            ExprPtr dim = parseExpr();
            auto v = evalConstant(*dim);
            if (!v || *v <= 0) {
              error(p.loc, "array dimension must be a positive constant");
              p.type.dims.push_back(1);
            } else {
              p.type.dims.push_back(*v);
            }
          }
          expect(TokKind::RBracket, "to close array dimension");
        }
        // Array parameters: 'const' marks them input streams; non-const are
        // output streams (mode tracks that).
        if (p.type.isArray()) p.mode = p.isConst ? ParamMode::In : ParamMode::Out;
        f.params.push_back(std::move(p));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after parameter list");
    StmtPtr body = parseBlock();
    f.body.reset(static_cast<BlockStmt*>(body.release()));
    return f;
  }
};

} // namespace

Module parse(const std::string& source, DiagEngine& diags) {
  faultpoint("frontend.parse");
  std::vector<Token> toks = lex(source, diags);
  Parser p(std::move(toks), diags);
  return p.parseModule();
}

} // namespace roccc::ast
