// roccc-verify — N-way differential conformance over a kernel corpus.
//
//   roccc-verify [options] [kernel.c ...]
//
// For every kernel (positional files, --table1, --corpus DIR — crossed with
// every --unroll factor), compiles through roccc::CompileService and demands
// that all execution engines produce bit-identical results on the same
// deterministic stimulus:
//
//   interp       AST interpreter, original source vs the streaming model
//   mir-exec     mir::execute per iteration
//   dp-eval      dp::evaluate per iteration (inferred widths)
//   netlist-ref  cycle-accurate system under NetlistSim (reference)
//   fastsim      cycle-accurate system under FastSim (compiled)
//
// Any disagreement is reported as a minimized counterexample: kernel, first
// diverging vector index, engine and port — and, when the two netlist
// engines diverge from each other, the first diverging net and cycle.
//
// Options:
//   --table1            add the nine Table 1 kernels
//   --corpus DIR        add every .c kernel in DIR (sorted)
//   --unroll LIST       comma-separated unroll factors (default "1")
//   --seed N            stimulus seed (default 0x0dc52005)
//   --jobs N            compile workers (0 = one per hardware thread)
//   --engines LIST      comma list of engines to run (default: all five)
//   --testbench-check   also generate each kernel's system-level testbench
//                       and replay it under both netlist engines
//   --soak N            fault-injection soak: N rounds re-running the batch
//                       with one armed fault point per round, asserting the
//                       sibling verdicts stay identical to the clean run
//   --json FILE         write the full JSON report (the CI disagreement
//                       artifact)
//   --quiet             only the summary and any disagreements
//
// Exit codes: 0 all engines agree on every kernel; 1 disagreement (or soak
// poisoning); 2 usage; 3 compile failure(s) with no disagreement.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "roccc/verify.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace {

struct Args {
  std::vector<std::string> inputs;
  bool table1 = false;
  std::string corpusDir;
  std::vector<int> unrolls = {1};
  roccc::VerifyOptions verify;
  int soakRounds = 0;
  std::string jsonPath;
  bool quiet = false;
  bool showHelp = false;
};

int usage() {
  std::fprintf(stderr, "usage: roccc-verify [options] [kernel.c ...]\n"
                       "       roccc-verify --help for the option list\n");
  return 2;
}

void printHelp() {
  std::printf(
      "usage: roccc-verify [options] [kernel.c ...]\n\n"
      "Differential conformance: every kernel is compiled and executed by up to five\n"
      "independent engines (interp, mir-exec, dp-eval, netlist-ref, fastsim) on the\n"
      "same deterministic stimulus; any disagreement is a minimized counterexample.\n\n"
      "options:\n"
      "  --table1            add the nine Table 1 kernels\n"
      "  --corpus DIR        add every .c kernel in DIR (sorted)\n"
      "  --unroll LIST       comma-separated unroll factors (default \"1\")\n"
      "  --seed N            stimulus seed (default 0x0dc52005)\n"
      "  --jobs N            compile workers (0 = one per hardware thread)\n"
      "  --engines LIST      comma list of engines (default: all five)\n"
      "  --testbench-check   also replay each generated system testbench\n"
      "  --soak N            fault-injection soak rounds (sibling isolation)\n"
      "  --json FILE         write the full JSON report\n"
      "  --quiet             only the summary and any disagreements\n\n"
      "exit codes: 0 agree, 1 disagreement, 2 usage, 3 compile failure\n");
}

bool parseEngines(const std::string& list, unsigned& mask) {
  mask = 0;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    bool found = false;
    for (int e = 0; e < roccc::kVerifyEngineCount; ++e) {
      if (item == roccc::verifyEngineName(static_cast<roccc::VerifyEngine>(e))) {
        mask |= 1u << e;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "error: unknown engine '%s'\n", item.c_str());
      return false;
    }
  }
  return mask != 0;
}

bool parseUnrolls(const std::string& list, std::vector<int>& out) {
  out.clear();
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int u = std::atoi(item.c_str());
    if (u < 1) return false;
    out.push_back(u);
  }
  return !out.empty();
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg.empty() || arg[0] != '-') {
      a.inputs.push_back(arg);
    } else if (arg == "--help") {
      a.showHelp = true;
    } else if (arg == "--table1") {
      a.table1 = true;
    } else if (arg == "--corpus") {
      const char* v = value();
      if (!v) return false;
      a.corpusDir = v;
    } else if (arg == "--unroll") {
      const char* v = value();
      if (!v || !parseUnrolls(v, a.unrolls)) return false;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return false;
      a.verify.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--jobs") {
      const char* v = value();
      if (!v) return false;
      a.verify.workers = std::atoi(v);
    } else if (arg == "--engines") {
      const char* v = value();
      if (!v || !parseEngines(v, a.verify.engineMask)) return false;
    } else if (arg == "--testbench-check") {
      a.verify.checkTestbench = true;
    } else if (arg == "--soak") {
      const char* v = value();
      if (!v) return false;
      a.soakRounds = std::atoi(v);
      if (a.soakRounds < 1) return false;
    } else if (arg == "--json") {
      const char* v = value();
      if (!v) return false;
      a.jsonPath = v;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool collectJobs(const Args& a, std::vector<roccc::CompileJob>& jobs) {
  struct SourceEntry {
    std::string name;
    std::string source;
    double targetNs = 0;
  };
  std::vector<SourceEntry> sources;
  if (a.table1) {
    for (const auto& k : roccc::bench::kTable1Kernels) {
      sources.push_back({k.name, k.source, k.targetStageDelayNs});
    }
  }
  if (!a.corpusDir.empty()) {
    namespace fs = std::filesystem;
    if (!fs::is_directory(a.corpusDir)) {
      std::fprintf(stderr, "error: '%s' is not a directory\n", a.corpusDir.c_str());
      return false;
    }
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(a.corpusDir)) {
      if (e.path().extension() == ".c") files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& p : files) {
      std::ifstream in(p);
      std::ostringstream buf;
      buf << in.rdbuf();
      sources.push_back({p.stem().string(), buf.str(), 0});
    }
  }
  for (const std::string& path : a.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({path, buf.str(), 0});
  }
  if (sources.empty()) {
    std::fprintf(stderr, "error: no kernels (give files, --table1, or --corpus DIR)\n");
    return false;
  }
  for (const auto& s : sources) {
    for (const int u : a.unrolls) {
      roccc::CompileJob job;
      job.name = u == 1 ? s.name : roccc::fmt("%0@u%1", s.name, u);
      job.source = s.source;
      job.options.unrollFactor = u;
      if (s.targetNs > 0) job.options.dpOptions.targetStageDelayNs = s.targetNs;
      jobs.push_back(std::move(job));
    }
  }
  return true;
}

void printVerdicts(const roccc::VerifyReport& report, bool quiet) {
  for (const auto& v : report.verdicts) {
    if (v.outcome != roccc::CompileOutcome::Ok) {
      std::printf("%-28s COMPILE-%s\n", v.kernel.c_str(),
                  roccc::compileOutcomeName(v.outcome));
      continue;
    }
    if (v.agree) {
      if (!quiet) {
        std::printf("%-28s agree (%d engines, %lld vectors, digest %016llx)\n", v.kernel.c_str(),
                    v.enginesRun, static_cast<long long>(v.iterations),
                    static_cast<unsigned long long>(v.outputDigest));
      }
      continue;
    }
    std::printf("%-28s DISAGREE\n", v.kernel.c_str());
    for (const auto& ce : v.disagreements) {
      std::printf("  [%s] %s\n", roccc::verifyEngineName(ce.engine), ce.detail.c_str());
    }
  }
}

/// Fault-injection soak: re-runs the batch with one armed fault point per
/// round (rotating through faultPointRegistry() and the job list) and
/// asserts every *other* job's verdict is identical to the clean run —
/// agreement, output digest, iteration count. A failing job must never
/// poison sibling conformance results.
int runSoak(const std::vector<roccc::CompileJob>& jobs, const roccc::VerifyOptions& opt,
            const roccc::VerifyReport& baseline, int rounds, bool quiet) {
  const auto& registry = roccc::faultPointRegistry();
  int poisonings = 0;
  for (int round = 0; round < rounds; ++round) {
    const auto& fp = registry[static_cast<size_t>(round) % registry.size()];
    const size_t victim = static_cast<size_t>(round) % jobs.size();
    std::vector<roccc::CompileJob> armed = jobs;
    armed[victim].options.injectFaultAt = fp.name;
    const roccc::VerifyReport report = roccc::verifyConformance(armed, opt);
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (i == victim) continue;
      const auto& base = baseline.verdicts[i];
      const auto& got = report.verdicts[i];
      if (base.outcome != got.outcome || base.agree != got.agree ||
          base.outputDigest != got.outputDigest || base.iterations != got.iterations) {
        ++poisonings;
        std::printf("SOAK POISONING round %d (fault '%s' on '%s'): sibling '%s' changed "
                    "(digest %016llx -> %016llx)\n",
                    round, fp.name, jobs[victim].name.c_str(), jobs[i].name.c_str(),
                    static_cast<unsigned long long>(base.outputDigest),
                    static_cast<unsigned long long>(got.outputDigest));
      }
    }
    if (!quiet) {
      std::printf("soak round %d: fault '%s' on '%s' -> %s; siblings clean\n", round, fp.name,
                  jobs[victim].name.c_str(),
                  roccc::compileOutcomeName(report.verdicts[victim].outcome));
    }
  }
  std::printf("soak: %d rounds, %d poisonings\n", rounds, poisonings);
  return poisonings == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parseArgs(argc, argv, a)) return usage();
  if (a.showHelp) {
    printHelp();
    return 0;
  }
  std::vector<roccc::CompileJob> jobs;
  if (!collectJobs(a, jobs)) return 2;

  const roccc::VerifyReport report = roccc::verifyConformance(jobs, a.verify);
  printVerdicts(report, a.quiet);
  std::printf("roccc-verify: %s\n", report.summary().c_str());

  if (!a.jsonPath.empty()) {
    std::ofstream out(a.jsonPath);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.jsonPath.c_str());
      return 2;
    }
    out << report.toJson();
    if (!a.quiet) std::printf("wrote %s\n", a.jsonPath.c_str());
  }

  int exitCode = 0;
  if (!report.allAgree()) exitCode = 1;
  else if (report.compileFailures() > 0) exitCode = 3;

  if (a.soakRounds > 0 && exitCode == 0) {
    const int soak = runSoak(jobs, a.verify, report, a.soakRounds, a.quiet);
    if (soak != 0) exitCode = soak;
  }
  return exitCode;
}
