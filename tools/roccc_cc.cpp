// roccc-cc — the command-line driver.
//
//   roccc-cc [options] kernel.c
//
// Compiles the kernel to RTL VHDL, writes <kernel>.vhd (and optionally a
// self-checking testbench), and prints the compilation report: data-path
// structure, synthesis estimate (area / clock / power), and — when inputs
// are provided — a hardware/software cosimulation verdict.
//
// Options:
//   -o FILE          output VHDL path (default: <input>.vhd)
//   --kernel NAME    kernel function (default: last function in the file)
//   --unroll N       partially unroll the streaming loop by N
//   --target-ns X    pipeline stage delay target (default 4.0)
//   --mult-style S   'lut' (default) or 'mult18'
//   --no-infer       disable bit-width inference
//   --no-pipeline    single combinational stage
//   --testbench      also write <output>_tb.vhd with random vectors
//   --cosim          run the cycle-accurate system on random inputs and
//                    verify against the interpreter
//   --sim-engine E   netlist engine for --cosim: 'fast' (compiled,
//                    default) or 'ref' (boxed-Value reference)
//   --vcd FILE       with --cosim: dump a VCD waveform of the run
//   --verilog FILE   also write the Verilog form of the design
//   --json FILE      export the data-path graph as JSON (Fig 1's graph
//                    editor / annotation interface)
//   --dump-datapath  print the data-path op listing
//   --dump-mir       print the back-end IR
//   --quiet          only errors
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "dp/annotate.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"
#include "vhdl/check.hpp"
#include "vhdl/testbench.hpp"
#include "vhdl/verilog.hpp"

namespace {

struct Args {
  std::string input;
  std::string output;
  roccc::CompileOptions options;
  bool testbench = false;
  bool cosim = false;
  roccc::rtl::SimEngine engine = roccc::rtl::SimEngine::Fast;
  std::string vcdPath;
  std::string verilogPath;
  std::string jsonPath;
  bool dumpDatapath = false;
  bool dumpMir = false;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o out.vhd] [--kernel NAME] [--unroll N] [--target-ns X]\n"
               "          [--mult-style lut|mult18] [--no-infer] [--no-pipeline]\n"
               "          [--testbench] [--cosim] [--sim-engine ref|fast]\n"
               "          [--dump-datapath] [--dump-mir]\n"
               "          [--quiet] kernel.c\n",
               argv0);
  return 2;
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "-o") {
      const char* v = next();
      if (!v) return false;
      a.output = v;
    } else if (arg == "--kernel") {
      const char* v = next();
      if (!v) return false;
      a.options.kernelName = v;
    } else if (arg == "--unroll") {
      const char* v = next();
      if (!v) return false;
      a.options.unrollFactor = std::atoi(v);
    } else if (arg == "--target-ns") {
      const char* v = next();
      if (!v) return false;
      a.options.dpOptions.targetStageDelayNs = std::atof(v);
    } else if (arg == "--mult-style") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "lut") == 0) {
        a.options.dpOptions.multStyle = roccc::dp::BuildOptions::MultStyle::Lut;
      } else if (std::strcmp(v, "mult18") == 0) {
        a.options.dpOptions.multStyle = roccc::dp::BuildOptions::MultStyle::Mult18;
      } else {
        return false;
      }
    } else if (arg == "--no-infer") {
      a.options.dpOptions.inferBitWidths = false;
    } else if (arg == "--no-pipeline") {
      a.options.dpOptions.pipeline = false;
    } else if (arg == "--testbench") {
      a.testbench = true;
    } else if (arg == "--cosim") {
      a.cosim = true;
    } else if (arg == "--sim-engine") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "ref") == 0 || std::strcmp(v, "reference") == 0) {
        a.engine = roccc::rtl::SimEngine::Reference;
      } else if (std::strcmp(v, "fast") == 0) {
        a.engine = roccc::rtl::SimEngine::Fast;
      } else {
        return false;
      }
    } else if (arg == "--vcd") {
      const char* v = next();
      if (!v) return false;
      a.vcdPath = v;
      a.cosim = true;
    } else if (arg == "--verilog") {
      const char* v = next();
      if (!v) return false;
      a.verilogPath = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      a.jsonPath = v;
    } else if (arg == "--dump-datapath") {
      a.dumpDatapath = true;
    } else if (arg == "--dump-mir") {
      a.dumpMir = true;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (a.input.empty()) {
      a.input = arg;
    } else {
      return false;
    }
  }
  return !a.input.empty();
}

/// Random inputs covering the kernel's arrays and scalars.
roccc::interp::KernelIO randomInputs(const roccc::hlir::KernelInfo& k, uint64_t seed) {
  std::mt19937_64 rng(seed);
  roccc::interp::KernelIO io;
  for (const auto& st : k.inputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    std::uniform_int_distribution<int64_t> dist(st.elemType.minValue(), st.elemType.maxValue());
    auto& arr = io.arrays[st.arrayName];
    for (int64_t i = 0; i < n; ++i) arr.push_back(dist(rng));
  }
  for (const auto& si : k.scalarInputs) {
    if (si.isInduction) continue;
    std::uniform_int_distribution<int64_t> dist(si.type.minValue(), si.type.maxValue());
    io.scalars[si.name] = dist(rng);
  }
  return io;
}

} // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parseArgs(argc, argv, a)) return usage(argv[0]);

  std::ifstream in(a.input);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", a.input.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  roccc::Compiler compiler(a.options);
  const roccc::CompileResult r = compiler.compileSource(source);
  if (!r.ok) {
    std::fprintf(stderr, "%s", r.diags.dump().c_str());
    return 1;
  }
  for (const auto& d : r.diags.all()) {
    if (d.severity == roccc::Severity::Warning) {
      std::fprintf(stderr, "%s\n", d.str().c_str());
    }
  }

  if (a.output.empty()) {
    a.output = a.input;
    const size_t dot = a.output.rfind('.');
    if (dot != std::string::npos) a.output.resize(dot);
    a.output += ".vhd";
  }
  {
    std::ofstream out(a.output);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.output.c_str());
      return 1;
    }
    out << r.vhdl;
  }
  const auto chk = roccc::vhdl::checkDesign(r.vhdl);
  if (!chk.ok) {
    std::fprintf(stderr, "internal: emitted VHDL failed validation:\n");
    for (const auto& p : chk.problems) std::fprintf(stderr, "  %s\n", p.c_str());
    return 1;
  }

  if (!a.verilogPath.empty()) {
    const auto vchk = roccc::verilog::checkDesign(r.verilog);
    if (!vchk.ok) {
      std::fprintf(stderr, "internal: emitted Verilog failed validation\n");
      return 1;
    }
    std::ofstream vout(a.verilogPath);
    vout << r.verilog;
    if (!a.quiet) std::printf("wrote %s (%d modules)\n", a.verilogPath.c_str(), vchk.moduleCount);
  }
  if (!a.jsonPath.empty()) {
    std::ofstream jout(a.jsonPath);
    jout << roccc::dp::exportJson(r.datapath);
    if (!a.quiet) std::printf("wrote %s\n", a.jsonPath.c_str());
  }

  if (a.testbench) {
    std::vector<std::vector<int64_t>> sets;
    std::mt19937_64 rng(42);
    for (int t = 0; t < 16; ++t) {
      std::vector<int64_t> set;
      for (const auto& p : r.datapath.inputs) {
        std::uniform_int_distribution<int64_t> dist(p.type.minValue(), p.type.maxValue());
        set.push_back(dist(rng));
      }
      sets.push_back(std::move(set));
    }
    const auto vectors = roccc::vhdl::makeVectors(r.datapath, sets);
    std::string tbPath = a.output;
    const size_t dot = tbPath.rfind('.');
    if (dot != std::string::npos) tbPath.resize(dot);
    tbPath += "_tb.vhd";
    std::ofstream tb(tbPath);
    tb << roccc::vhdl::emitTestbench(r.datapath, vectors);
    if (!a.quiet) std::printf("wrote %s (16 vectors)\n", tbPath.c_str());
  }

  if (!a.quiet) {
    std::printf("wrote %s (%d entities)\n", a.output.c_str(), chk.entityCount);
    std::printf("kernel '%s': %zu-deep loop nest, %zu input stream(s), %zu output stream(s), "
                "%zu feedback register(s)\n",
                r.kernel.kernelName.c_str(), r.kernel.loops.size(), r.kernel.inputs.size(),
                r.kernel.outputs.size(), r.kernel.feedbacks.size());
    std::printf("data path: %d nodes (%d soft + %d hard), %d pipeline stages, %lld bits narrowed\n",
                static_cast<int>(r.datapath.nodes.size()), r.datapath.softNodeCount,
                r.datapath.hardNodeCount, r.datapath.stageCount,
                static_cast<long long>(r.datapath.narrowedBits));
    const auto rep = roccc::synth::estimate(r.module);
    std::printf("synthesis estimate (xc2v2000-5): %s\n", rep.summary().c_str());
    std::printf("dynamic power @ fmax: %.1f mW\n",
                roccc::synth::estimatePowerMw(rep.res, rep.fmaxMHz()));
  }
  if (a.dumpDatapath) std::printf("\n%s", r.datapath.dump().c_str());
  if (a.dumpMir) std::printf("\n%s", r.mir.dump().c_str());

  if (a.cosim) {
    const auto io = randomInputs(r.kernel, 1234);
    roccc::rtl::SystemOptions sysOpt;
    sysOpt.recordVcd = !a.vcdPath.empty();
    sysOpt.engine = a.engine;
    const auto rep = roccc::cosimulate(r, source, io, sysOpt);
    if (!rep.match) {
      std::fprintf(stderr, "COSIMULATION MISMATCH: %s\n", rep.mismatch.c_str());
      return 1;
    }
    if (!a.quiet) {
      std::printf("cosimulation: MATCH (%lld cycles, %lld iterations, %lld BRAM reads, "
                  "%s engine)\n",
                  static_cast<long long>(rep.stats.cycles),
                  static_cast<long long>(rep.stats.iterations),
                  static_cast<long long>(rep.stats.bramReads),
                  roccc::rtl::simEngineName(a.engine));
    }
    if (!a.vcdPath.empty()) {
      roccc::rtl::System sys(r.kernel, r.datapath, r.module, sysOpt);
      sys.run(io);
      std::ofstream vcdOut(a.vcdPath);
      vcdOut << sys.vcd();
      if (!a.quiet) std::printf("wrote %s\n", a.vcdPath.c_str());
    }
  }
  return 0;
}
