#include <gtest/gtest.h>

#include "roccc/compiler.hpp"
#include "support/strings.hpp"
#include "synth/estimate.hpp"
#include "vhdl/check.hpp"
#include "vhdl/testbench.hpp"

namespace roccc {
namespace {

CompileResult compile(const std::string& src) {
  Compiler c;
  CompileResult r = c.compileSource(src);
  EXPECT_TRUE(r.ok) << r.diags.dump();
  return r;
}

const char* kFir = R"(
  void fir(const int16 A[36], int16 C[32]) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
      C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
    }
  }
)";

TEST(Testbench, VectorsComeFromDataPathEvaluation) {
  CompileResult r = compile(kFir);
  std::vector<std::vector<int64_t>> sets = {{1, 2, 3, 4, 5}, {-1, 0, 1, 0, -1}, {100, -100, 50, -50, 25}};
  const auto vectors = vhdl::makeVectors(r.datapath, sets);
  ASSERT_EQ(vectors.size(), 3u);
  for (size_t t = 0; t < sets.size(); ++t) {
    int64_t expect = 3 * sets[t][0] + 5 * sets[t][1] + 7 * sets[t][2] + 9 * sets[t][3] - sets[t][4];
    expect = static_cast<int16_t>(expect);
    ASSERT_EQ(vectors[t].expectedOutputs.size(), 1u);
    EXPECT_EQ(vectors[t].expectedOutputs[0].toInt(), expect) << "vector " << t;
  }
}

TEST(Testbench, FeedbackThreadsAcrossVectors) {
  CompileResult r = compile(R"(
    int32 sum = 0;
    void acc(const int32 A[8], int32* out) {
      int i;
      for (i = 0; i < 8; i++) { sum = sum + A[i]; }
      *out = sum;
    }
  )");
  std::vector<std::vector<int64_t>> sets = {{5}, {7}, {-2}};
  const auto vectors = vhdl::makeVectors(r.datapath, sets);
  // Expected outputs accumulate: 5, 12, 10.
  EXPECT_EQ(vectors[0].expectedOutputs[0].toInt(), 5);
  EXPECT_EQ(vectors[1].expectedOutputs[0].toInt(), 12);
  EXPECT_EQ(vectors[2].expectedOutputs[0].toInt(), 10);
}

TEST(Testbench, EmittedBenchIsStructurallyValid) {
  CompileResult r = compile(kFir);
  std::vector<std::vector<int64_t>> sets;
  for (int t = 0; t < 8; ++t) sets.push_back({t, t + 1, t + 2, t + 3, t + 4});
  const auto vectors = vhdl::makeVectors(r.datapath, sets);
  const std::string tb = vhdl::emitTestbench(r.datapath, vectors);
  // The design + testbench together must validate (the tb instantiates the
  // design entity).
  const auto chk = vhdl::checkDesign(r.vhdl + "\n" + tb);
  EXPECT_TRUE(chk.ok) << join(chk.problems, "\n") << "\n" << tb;
  EXPECT_NE(tb.find("entity fir_dp_tb is"), std::string::npos);
  EXPECT_NE(tb.find("TESTBENCH PASSED"), std::string::npos);
  EXPECT_NE(tb.find("assert"), std::string::npos);
}

TEST(Power, ScalesWithResourcesAndClock) {
  synth::Resources small;
  small.lut4 = 100;
  small.ff = 100;
  synth::Resources big = small;
  big.lut4 = 1000;
  const double p1 = synth::estimatePowerMw(small, 100);
  const double p2 = synth::estimatePowerMw(big, 100);
  const double p3 = synth::estimatePowerMw(small, 200);
  EXPECT_GT(p2, p1);
  EXPECT_NEAR(p3, 2 * p1, 1e-9);
  EXPECT_GT(p1, 0);
  // A multiplier block costs more than a LUT.
  synth::Resources mult;
  mult.mult18 = 1;
  synth::Resources lut;
  lut.lut4 = 1;
  EXPECT_GT(synth::estimatePowerMw(mult, 100), synth::estimatePowerMw(lut, 100));
}

TEST(Power, Table1DesignsInPlausibleRange) {
  CompileResult r = compile(kFir);
  const auto rep = synth::estimate(r.module);
  const double mw = synth::estimatePowerMw(rep.res, rep.fmaxMHz());
  // A small Virtex-II datapath at a couple hundred MHz: tens to hundreds
  // of milliwatts dynamic.
  EXPECT_GT(mw, 5.0);
  EXPECT_LT(mw, 2000.0);
}

} // namespace
} // namespace roccc
