#!/bin/sh
# Checks that a CLI reference doc documents exactly the options the paired
# binary's --help reports — both directions: an undocumented flag fails,
# and so does a documented flag the binary no longer accepts.
#
#   check_cli_docs.sh <path-to-binary> <path-to-reference.md>
#
# Registered as the `cli_docs_in_sync` (roccc-cc / docs/CLI.md) and
# `explore_cli_docs_in_sync` (roccc-explore / docs/EXPLORE.md) ctests
# (tests/CMakeLists.txt) and run by the docs CI job.
set -eu

RCC="$1"
DOC="$2"

[ -x "$RCC" ] || { echo "error: '$RCC' is not executable" >&2; exit 1; }
[ -f "$DOC" ] || { echo "error: '$DOC' not found" >&2; exit 1; }

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Flags as --help lists them: the option table prints one per line, indented
# two spaces.
"$RCC" --help \
  | sed -n 's/^  \(--\{0,1\}[a-z][a-z0-9-]*\).*/\1/p' \
  | sort -u > "$tmpdir/help_flags"

# Flags as documented: every `--flag` (or `-o`) that starts a backticked
# span in the reference table/headings of CLI.md.
grep -oE '`--?[a-z][a-z0-9-]*' "$DOC" \
  | sed 's/^`//' \
  | sort -u > "$tmpdir/doc_flags"

if ! diff -u "$tmpdir/help_flags" "$tmpdir/doc_flags" > "$tmpdir/diff"; then
  echo "$DOC is out of sync with $(basename "$RCC") --help:" >&2
  echo "(lines prefixed '-' are in --help but undocumented;" >&2
  echo " lines prefixed '+' are documented but not in --help)" >&2
  cat "$tmpdir/diff" >&2
  exit 1
fi

echo "$DOC and $(basename "$RCC") --help agree ($(wc -l < "$tmpdir/help_flags") flags)"
