// roccc::explore — the design-space exploration engine (ROADMAP item 2).
//
// One compile per kernel is never the real workload: architects sweep
// unroll factor x compile options x smart-buffer geometry and pick from the
// area/fmax/cycles/energy Pareto frontier. This module turns that workflow
// into a first-class, deterministic batch job:
//
//   SweepGrid      declares the axes: kernels x unroll x auto-unroll budget
//                  x target-ns x {retime, pipeline, optimize, lut-convert}
//                  x width-mode x mult-style x smart-buffer/bus geometry.
//   expandGrid     crosses every axis into a flat job list, canonicalizes
//                  each point's CompileOptions, and deduplicates points
//                  whose (source, options, geometry) are semantically
//                  identical (two spellings of the default target-ns, a
//                  repeated axis value, ...). Expansion order is fixed, so
//                  the point list is a pure function of the grid.
//   runSweep       fans the points through roccc::CompileService — the
//                  CompileCache dedups shared points across sweeps, the
//                  per-job CompileBudget bounds each — then collects
//                  per-point metrics: slices / LUT / FF / MULT18 / BRAM and
//                  modeled fmax + energy from synth::estimate, cycles and
//                  BRAM traffic from a FastSim system run on the same
//                  deterministic stimulus the conformance engine uses.
//   paretoFrontier computes the non-dominated set per kernel over the
//                  user-selected axes (dominated-point removal; metric
//                  ties keep both points; a single axis degenerates to
//                  "all points sharing the best value").
//   verifyFrontier re-verifies every Pareto-optimal point through the
//                  5-way differential conformance engine (roccc/verify.*)
//                  plus its system testbench, so a sweep can never
//                  recommend a configuration that miscompiles.
//
// Determinism guarantee (tests/explore_test.cpp): a sweep report is a pure
// function of (grid, options) — SweepResult::toJson() is byte-identical
// across worker counts and across cold/warm cache runs. Wall-time and
// cache-accounting fields are exempt and only serialized on request
// (toJson(true)); this is the same contract compileBatch gives.
//
// Fault containment extends to exploration: a point can fail — compile
// outcome or simulation error — but a sweep cannot crash. Failed points are
// recorded as typed PointOutcome rows in the report (never silently
// dropped), and sibling points are byte-unaffected
// (tests/explore_cache_test.cpp's fault soak).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "roccc/driver.hpp"
#include "roccc/verify.hpp"

namespace roccc {

class CompileCache;

// --- grid declaration --------------------------------------------------------

/// The sweep grid: kernels x axis value lists. Every axis defaults to a
/// one-element list holding the compiler default, so an empty grid with one
/// kernel is exactly one compile.
struct SweepGrid {
  struct Kernel {
    std::string name;
    std::string source;
    /// Per-kernel stage-delay default (the Table 1 per-row targets); a
    /// grid-axis value of 0 resolves to this, or to the BuildOptions
    /// default when this is 0 too.
    double defaultTargetNs = 0;
  };
  /// How widths are inferred: Declared disables inference entirely,
  /// PortOpcode is the paper's structural rule, Range is interval analysis
  /// (the compiler default).
  enum class WidthMode { Declared, PortOpcode, Range };

  std::vector<Kernel> kernels;

  std::vector<int> unrolls{1};
  /// Auto-unroll slice budgets (0 = explicit unrollFactor); nonzero values
  /// make the compiler pick the largest power-of-two fitting the budget.
  std::vector<int64_t> autoUnrollBudgets{0};
  /// Pipeline stage-delay targets in ns (0 = kernel/compiler default).
  std::vector<double> targetNs{0};
  std::vector<bool> retime{true};
  std::vector<bool> pipeline{true};
  std::vector<bool> optimize{true};
  std::vector<bool> lutConvert{true};
  std::vector<WidthMode> widthModes{WidthMode::Range};
  std::vector<dp::BuildOptions::MultStyle> multStyles{
      dp::BuildOptions::MultStyle::Lut};
  /// Smart-buffer geometry: elements fetched per clock, and smart vs naive
  /// (re-fetching) buffering.
  std::vector<int> busElems{1};
  std::vector<bool> smartBuffer{true};

  /// Base options every point starts from: budget limits, timing-model
  /// override, fault arming. Axis values overwrite their fields.
  CompileOptions base;
};

const char* widthModeName(SweepGrid::WidthMode mode);
const char* multStyleName(dp::BuildOptions::MultStyle style);

/// One point's resolved axis coordinates (the "config" block of the JSON
/// report; options carries the same information in compiler form).
struct SweepPointConfig {
  int unroll = 1;
  int64_t autoUnrollBudget = 0;
  double targetNs = 0; ///< resolved (never 0 once expanded)
  bool retime = true;
  bool pipeline = true;
  bool optimize = true;
  bool lutConvert = true;
  SweepGrid::WidthMode widthMode = SweepGrid::WidthMode::Range;
  dp::BuildOptions::MultStyle multStyle = dp::BuildOptions::MultStyle::Lut;
  int busElems = 1;
  bool smartBuffer = true;
};

/// One expanded design point: a (kernel, options, geometry) triple with a
/// stable human-readable label ("fir@u2/ns4/mult18/naive").
struct SweepPoint {
  std::string kernel; ///< kernel name (frontier grouping key)
  std::string label;  ///< unique within the sweep; stable across runs
  std::string source; ///< C source text (not serialized to JSON)
  SweepPointConfig config;
  CompileOptions options; ///< fully resolved compile options
};

/// Crosses the grid into the deduplicated, deterministically-ordered point
/// list. Dedup key: (kernel name, content-addressed compile key via
/// roccc::computeCacheKey, buffer geometry) — the first spelling wins.
std::vector<SweepPoint> expandGrid(const SweepGrid& grid);

// --- grid manifest files -----------------------------------------------------

/// A parsed sweep grid file (roccc-explore --manifest; bench/sweeps/*.sweep;
/// format reference in docs/EXPLORE.md). Kernel references are left
/// unresolved — `table1` names resolve against bench/kernels.hpp in the
/// tool, `kernel NAME PATH` paths load relative to the manifest — so the
/// parser itself stays pure and testable.
struct SweepManifest {
  SweepGrid grid; ///< axis lists (grid.kernels stays empty)
  struct KernelFile {
    std::string name;
    std::string path;
  };
  std::vector<KernelFile> kernelFiles;
  /// Table 1 kernel names requested by `table1 [name...]`.
  std::vector<std::string> table1;
  bool table1All = false; ///< bare `table1` — all nine
  std::vector<int> axes; ///< SweepAxis values; empty = caller default
  uint64_t seed = 0;
  bool seedSet = false;
};

/// Parses a grid file: one `directive value...` per line, values split on
/// spaces and/or commas, blank lines and #-comments skipped. On failure
/// returns false with a line-numbered message in `error`
/// ("line 7: unknown directive 'unrol'").
bool parseSweepManifest(const std::string& text, SweepManifest& out, std::string& error);

// --- metrics and Pareto ------------------------------------------------------

/// The Pareto axes a frontier can be computed over. FmaxMHz and Throughput
/// maximize; everything else minimizes.
enum class SweepAxis { Slices, FmaxMHz, Cycles, EnergyPjPerCycle, EdpPjNs, Throughput };
inline constexpr int kSweepAxisCount = 6;
const char* sweepAxisName(SweepAxis axis);         ///< "slices", "fmax", ...
bool parseSweepAxis(const std::string& name, SweepAxis& out);
bool sweepAxisMaximizes(SweepAxis axis);

/// Per-point measurements: area/timing/energy from synth::estimate under
/// the point's timing model, cycles/traffic/throughput from a FastSim
/// system run at the point's buffer geometry.
struct PointMetrics {
  int64_t slices = 0;
  int64_t lut4 = 0, ff = 0, mult18 = 0, bram = 0;
  int stages = 0;
  /// Stage-crossing register cost split (the pipeline-ablation columns):
  /// registers carrying values between stages, and the "adjoining def-ref"
  /// balancing copies.
  int64_t pipelineRegBits = 0, balanceRegBits = 0;
  double criticalPathNs = 0, fmaxMHz = 0;
  int64_t cycles = 0;    ///< FastSim system cycles over the iteration space
  int64_t bramReads = 0; ///< off-buffer element reads (smart-buffer reuse)
  double throughput = 0; ///< output elements per clock, steady state
  double energyPjPerCycle = 0;
  double edpPjNs = 0;
};

/// Reads one axis out of a metric set.
double metricValue(const PointMetrics& m, SweepAxis axis);

/// Generic dominated-point removal. `rows[i]` holds one value per axis;
/// `maximize[a]` flips axis a's direction. Returns the indices of the
/// non-dominated rows in input order. A row dominates another when it is
/// better-or-equal on every axis and strictly better on at least one —
/// ties (identical rows) dominate nothing, so both stay.
std::vector<size_t> paretoFrontier(const std::vector<std::vector<double>>& rows,
                                   const std::vector<bool>& maximize);

// --- sweep execution ---------------------------------------------------------

/// How a point ended. The compile outcomes map 1:1 from CompileOutcome;
/// SimError is a contained metric-collection failure (the design compiled
/// but the system simulation threw — cycle limit, unbindable port).
enum class PointOutcome { Ok, FrontendError, Timeout, ResourceExceeded, InternalError, SimError };
const char* pointOutcomeName(PointOutcome outcome);
PointOutcome pointOutcomeFrom(CompileOutcome outcome);

struct SweepPointResult {
  SweepPoint point;
  PointOutcome outcome = PointOutcome::Ok;
  std::string error;   ///< first diagnostic / simulation error when not Ok
  bool pareto = false; ///< on its kernel's frontier
  PointMetrics metrics; ///< valid when outcome == Ok
  double compileMs = 0; ///< wall time, exempt from byte-determinism
};

/// A kernel's frontier: indices into SweepResult::points, in point order,
/// plus the recommended configuration ("best"): the frontier point with the
/// lowest total runtime (cycles x clock period), area then label breaking
/// ties.
struct KernelFrontier {
  std::string kernel;
  std::vector<size_t> points;
  size_t best = 0; ///< index into SweepResult::points
};

struct SweepOptions {
  /// Frontier axes (order is presentation only; the set is what matters).
  std::vector<SweepAxis> axes{SweepAxis::Slices, SweepAxis::FmaxMHz, SweepAxis::Cycles};
  /// Stimulus seed for the FastSim cycle-collection run (the same
  /// SplitMix64 derivation the conformance engine uses).
  uint64_t seed = 0x0dc5'2005;
  int workers = 0; ///< CompileService workers (0 = hardware)
  /// Optional compile cache shared across sweeps / passes.
  std::shared_ptr<CompileCache> cache;
  /// Skip the FastSim run (area/timing-only sweeps; cycles stay 0 and the
  /// Cycles/Throughput axes are unavailable).
  bool collectCycles = true;
};

struct SweepResult {
  std::vector<SweepAxis> axes;
  uint64_t seed = 0;
  std::vector<SweepPointResult> points; ///< expansion order — every point, always
  std::vector<KernelFrontier> frontiers; ///< kernels in first-appearance order

  // Run accounting — measurement, not output; exempt from determinism and
  // excluded from toJson(false).
  int workers = 1;
  double wallMs = 0;
  int cacheHits = 0, cacheMisses = 0;

  int okCount() const;
  int failedCount() const;
  /// "10 ok, 1 internal-error, 1 sim-error" — zero-count outcomes omitted.
  std::string outcomeSummary() const;

  /// The versioned JSON report ("schema": "roccc-sweep-v1"). With
  /// includeTimings false (the default and the determinism contract) the
  /// bytes are a pure function of (grid, SweepOptions); true adds the
  /// per-point compileMs and a "run" block (workers, wallMs, cache hits).
  std::string toJson(bool includeTimings = false) const;
  /// Per-kernel metric table, Pareto points starred.
  std::string table() const;
  /// The "best config per kernel" report.
  std::string bestReport() const;
};

/// Runs every point: batch compile (cache-aware), per-point metric
/// collection, per-kernel frontier + best-config computation.
SweepResult runSweep(const std::vector<SweepPoint>& points, const SweepOptions& opt);
SweepResult runSweep(const SweepGrid& grid, const SweepOptions& opt);

/// Re-verifies every Pareto-optimal point through 5-way differential
/// conformance (and, per opt.checkTestbench, its system testbench). Points
/// are recompiled fresh — cache hits carry no IR — and verdicts come back
/// in frontier order, labeled by point. A sweep whose frontier fails this
/// must not be trusted; roccc-explore --verify-pareto exits nonzero.
VerifyReport verifyFrontier(const SweepResult& sweep, const VerifyOptions& opt);

} // namespace roccc
