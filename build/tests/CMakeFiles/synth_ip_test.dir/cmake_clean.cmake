file(REMOVE_RECURSE
  "CMakeFiles/synth_ip_test.dir/synth_ip_test.cpp.o"
  "CMakeFiles/synth_ip_test.dir/synth_ip_test.cpp.o.d"
  "synth_ip_test"
  "synth_ip_test.pdb"
  "synth_ip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
