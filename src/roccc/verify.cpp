#include "roccc/verify.hpp"

#include <algorithm>
#include <optional>

#include "dp/eval.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "mir/exec.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "vhdl/testbench.hpp"

namespace roccc {

namespace {

bool engineRequested(const VerifyOptions& opt, VerifyEngine e) {
  if (e == VerifyEngine::Interp) return true; // the oracle always runs
  return (opt.engineMask >> static_cast<int>(e)) & 1u;
}

/// First difference between the golden kernel results and an engine's,
/// over everything the kernel defines: output arrays (element order),
/// scalar outs, exported feedback finals.
std::optional<Counterexample> compareFinal(const hlir::KernelInfo& kernel,
                                           const interp::KernelIO& golden,
                                           const interp::KernelIO& got) {
  for (const auto& st : kernel.outputs) {
    const auto g = golden.arrays.find(st.arrayName);
    const auto h = got.arrays.find(st.arrayName);
    if (g == golden.arrays.end() || h == got.arrays.end() || g->second.size() != h->second.size()) {
      Counterexample ce;
      ce.port = st.arrayName;
      ce.detail = fmt("output array '%0' missing or size mismatch", st.arrayName);
      return ce;
    }
    for (size_t i = 0; i < g->second.size(); ++i) {
      if (g->second[i] != h->second[i]) {
        Counterexample ce;
        ce.port = st.arrayName;
        ce.index = static_cast<int64_t>(i);
        ce.expected = std::to_string(g->second[i]);
        ce.got = std::to_string(h->second[i]);
        ce.detail = fmt("array '%0'[%1]: expected %2, got %3", st.arrayName, i, g->second[i],
                        h->second[i]);
        return ce;
      }
    }
  }
  const auto compareScalar = [&](const std::string& name) -> std::optional<Counterexample> {
    const auto g = golden.scalars.find(name);
    if (g == golden.scalars.end()) return std::nullopt; // not visible in golden results
    const auto h = got.scalars.find(name);
    const int64_t hv = h == got.scalars.end() ? 0 : h->second;
    if (h != got.scalars.end() && hv == g->second) return std::nullopt;
    Counterexample ce;
    ce.port = name;
    ce.expected = std::to_string(g->second);
    ce.got = h == got.scalars.end() ? "<missing>" : std::to_string(hv);
    ce.detail = fmt("scalar '%0': expected %1, got %2", name, ce.expected, ce.got);
    return ce;
  };
  for (const auto& so : kernel.scalarOutputs) {
    if (auto ce = compareScalar(so.name)) return ce;
  }
  for (const auto& fb : kernel.feedbacks) {
    if (auto ce = compareScalar(fb.name)) return ce;
  }
  return std::nullopt;
}

/// First per-iteration divergence between the reference trace and an
/// engine's trace: sharper than compareFinal because it pins the exact
/// iteration and data-path port, before window scatter can mask it.
std::optional<Counterexample> compareTraces(const dp::DataPath& dp,
                                            const hlir::KernelInfo& kernel,
                                            const rtl::StreamTrace& ref,
                                            const rtl::StreamTrace& got) {
  for (size_t t = 0; t < ref.outputs.size() && t < got.outputs.size(); ++t) {
    for (size_t p = 0; p < dp.outputs.size(); ++p) {
      const int64_t want = ref.outputs[t][p].convertTo(dp.outputs[p].type).toInt();
      const int64_t have = got.outputs[t][p].convertTo(dp.outputs[p].type).toInt();
      if (want != have) {
        Counterexample ce;
        ce.port = dp.outputs[p].name;
        ce.index = static_cast<int64_t>(t);
        ce.expected = std::to_string(want);
        ce.got = std::to_string(have);
        ce.detail = fmt("iteration %0, dp output '%1': expected %2, got %3", t,
                        dp.outputs[p].name, want, have);
        return ce;
      }
    }
  }
  for (const auto& fb : kernel.feedbacks) {
    const auto g = ref.finalFeedback.find(fb.name);
    const auto h = got.finalFeedback.find(fb.name);
    if (g == ref.finalFeedback.end()) continue;
    const int64_t want = g->second.convertTo(fb.type).toInt();
    const int64_t have = h == got.finalFeedback.end() ? 0 : h->second.convertTo(fb.type).toInt();
    if (h == got.finalFeedback.end() || want != have) {
      Counterexample ce;
      ce.port = fb.name;
      ce.index = static_cast<int64_t>(ref.outputs.size());
      ce.expected = std::to_string(want);
      ce.got = h == got.finalFeedback.end() ? "<missing>" : std::to_string(have);
      ce.detail = fmt("final feedback '%0': expected %1, got %2", fb.name, ce.expected, ce.got);
      return ce;
    }
  }
  return std::nullopt;
}

/// Lockstep net-level replay of NetlistSim (oracle) against FastSim on the
/// reference stimulus: localizes a netlist-engine disagreement to the first
/// diverging net and cycle.
std::optional<Counterexample> lockstepNets(const dp::DataPath& dp, const rtl::Module& module,
                                           const rtl::StreamTrace& ref) {
  if (ref.inputs.empty()) return std::nullopt;
  rtl::NetlistSim oracle(module);
  rtl::FastSim fast(module);
  const bool hasValid = module.inputPorts.size() > dp.inputs.size();
  const size_t n = ref.inputs.size();
  const size_t latency = static_cast<size_t>(module.latency);
  for (size_t t = 0; t < n + latency; ++t) {
    const auto& ins = ref.inputs[std::min(t, n - 1)];
    for (size_t p = 0; p < dp.inputs.size(); ++p) {
      const Value v = ins[p].convertTo(dp.inputs[p].type);
      oracle.setInput(p, v);
      fast.setInput(p, v);
    }
    if (hasValid) {
      oracle.setInput(dp.inputs.size(), Value(ScalarType::boolTy(), 1));
      fast.setInput(dp.inputs.size(), Value(ScalarType::boolTy(), 1));
    }
    oracle.eval();
    fast.eval();
    for (const auto& net : module.nets) {
      const Value a = oracle.netValue(net.id);
      const Value b = fast.netValue(net.id);
      if (a.bits() != b.bits()) {
        Counterexample ce;
        ce.engine = VerifyEngine::FastSim;
        ce.port = fmt("net '%0'", net.name.empty() ? std::to_string(net.id) : net.name);
        ce.index = static_cast<int64_t>(t);
        ce.expected = std::to_string(a.toInt());
        ce.got = std::to_string(b.toInt());
        ce.detail = fmt("cycle %0, %1: reference drives %2, fast drives %3", t, ce.port,
                        ce.expected, ce.got);
        return ce;
      }
    }
    oracle.tick(true);
    fast.tick(true);
  }
  return std::nullopt;
}

uint64_t digestIO(const hlir::KernelInfo& kernel, const interp::KernelIO& golden) {
  uint64_t d = fnv1a("roccc-verify");
  for (const auto& st : kernel.outputs) {
    d = fnv1a(st.arrayName, d);
    const auto it = golden.arrays.find(st.arrayName);
    if (it == golden.arrays.end()) continue;
    for (const int64_t v : it->second) d = fnv1aMix(static_cast<uint64_t>(v), d);
  }
  const auto mixScalar = [&](const std::string& name) {
    const auto it = golden.scalars.find(name);
    if (it == golden.scalars.end()) return;
    d = fnv1a(name, d);
    d = fnv1aMix(static_cast<uint64_t>(it->second), d);
  };
  for (const auto& so : kernel.scalarOutputs) mixScalar(so.name);
  for (const auto& fb : kernel.feedbacks) mixScalar(fb.name);
  return d;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fmt("\\u00%0%1", "0123456789abcdef"[(c >> 4) & 0xf], "0123456789abcdef"[c & 0xf]);
        } else {
          out += c;
        }
    }
  }
  return out;
}

} // namespace

const char* verifyEngineName(VerifyEngine e) {
  switch (e) {
    case VerifyEngine::Interp: return "interp";
    case VerifyEngine::MirExec: return "mir-exec";
    case VerifyEngine::DpEval: return "dp-eval";
    case VerifyEngine::NetlistRef: return "netlist-ref";
    case VerifyEngine::FastSim: return "fastsim";
  }
  return "?";
}

interp::KernelIO deterministicStimulus(const hlir::KernelInfo& kernel, uint64_t seed) {
  interp::KernelIO io;
  for (const auto& st : kernel.inputs) {
    SplitMix64 rng(fnv1aMix(seed, fnv1a(kernel.kernelName + "/" + st.arrayName)));
    int64_t n = 1;
    for (const int64_t d : st.dims) n *= d;
    std::vector<int64_t> data(static_cast<size_t>(n));
    for (auto& v : data) v = rng.inRange(st.elemType.minValue(), st.elemType.maxValue());
    io.arrays[st.arrayName] = std::move(data);
  }
  for (const auto& si : kernel.scalarInputs) {
    if (si.isInduction) continue;
    SplitMix64 rng(fnv1aMix(seed, fnv1a(kernel.kernelName + "/$" + si.name)));
    io.scalars[si.name] = rng.inRange(si.type.minValue(), si.type.maxValue());
  }
  return io;
}

KernelVerdict verifyKernel(const std::string& name, const std::string& source,
                           const CompileResult& compiled, const VerifyOptions& opt) {
  KernelVerdict v;
  v.kernel = name;
  v.outcome = compiled.outcome;
  if (!compiled.ok) {
    v.compileError = compiled.diags.dump();
    return v;
  }
  if (compiled.kernel.kernelName.empty()) {
    v.outcome = CompileOutcome::InternalError;
    v.compileError = "compile result carries no IR (cache hit?) — verification needs a fresh compile";
    return v;
  }

  const hlir::KernelInfo& kernel = compiled.kernel;
  const dp::DataPath& dp = compiled.datapath;
  const interp::KernelIO io = deterministicStimulus(kernel, opt.seed);

  const auto fail = [&](VerifyEngine e, Counterexample ce) {
    ce.kernel = name;
    ce.engine = ce.port.rfind("net '", 0) == 0 ? ce.engine : e;
    v.disagreements.push_back(std::move(ce));
  };
  const auto failText = [&](VerifyEngine e, const std::string& detail) {
    Counterexample ce;
    ce.detail = detail;
    fail(e, std::move(ce));
  };

  // Golden: the AST interpreter on the original source.
  interp::KernelIO golden;
  try {
    DiagEngine diags;
    ast::Module m = ast::parse(source, diags);
    if (diags.hasErrors() || !ast::analyze(m, diags)) {
      v.outcome = CompileOutcome::InternalError;
      v.compileError = "golden model failed to build: " + diags.dump();
      return v;
    }
    golden = interp::runKernel(m, kernel.kernelName, io);
  } catch (const interp::InterpError& e) {
    v.outcome = CompileOutcome::InternalError;
    v.compileError = "golden model failed to run: " + e.message;
    return v;
  }
  v.outputDigest = digestIO(kernel, golden);

  // Engine 1, Interp: the streaming model driven by the AST interpreter on
  // the extracted data-path function, against the original-source run.
  // This checks the front end (extraction, scalar replacement, feedback
  // detection, access patterns); every later engine compares against the
  // per-iteration trace this run records.
  interp::Interpreter dpSim(kernel.dpModule);
  rtl::StreamTrace ref;
  try {
    ref = rtl::traceStreamingModel(kernel, dp, io, rtl::interpreterStep(kernel, dp, dpSim));
  } catch (const std::exception& e) {
    failText(VerifyEngine::Interp, fmt("streaming model failed: %0", e.what()));
    return v;
  } catch (const interp::InterpError& e) {
    failText(VerifyEngine::Interp, fmt("streaming model failed: %0", e.message));
    return v;
  }
  v.iterations = static_cast<int64_t>(ref.outputs.size());
  ++v.enginesRun;
  if (auto ce = compareFinal(kernel, golden, ref.final)) fail(VerifyEngine::Interp, std::move(*ce));

  // Engine 2, MirExec: mir::execute per iteration, ports mapped by name
  // (MIR params and dp ports share the data-path function's names).
  if (engineRequested(opt, VerifyEngine::MirExec)) {
    ++v.enginesRun;
    const mir::FunctionIR& f = compiled.mir;
    std::vector<int> inIdx(dp.inputs.size(), -1);
    bool mapped = true;
    for (size_t p = 0; p < dp.inputs.size(); ++p) {
      const auto idx = f.inputPortIndex(dp.inputs[p].name);
      if (!idx) {
        failText(VerifyEngine::MirExec, fmt("dp input '%0' has no MIR port", dp.inputs[p].name));
        mapped = false;
        break;
      }
      inIdx[p] = *idx;
    }
    std::vector<ScalarType> inTypes;
    std::vector<std::string> outNames;
    for (const auto& prm : f.params) {
      if (prm.isOutput) outNames.push_back(prm.name);
      else inTypes.push_back(prm.type);
    }
    std::vector<int> outIdx(dp.outputs.size(), -1);
    for (size_t p = 0; mapped && p < dp.outputs.size(); ++p) {
      const auto it = std::find(outNames.begin(), outNames.end(), dp.outputs[p].name);
      if (it == outNames.end()) {
        failText(VerifyEngine::MirExec, fmt("dp output '%0' has no MIR port", dp.outputs[p].name));
        mapped = false;
        break;
      }
      outIdx[p] = static_cast<int>(it - outNames.begin());
    }
    if (mapped) {
      const rtl::StreamStep step = [&](const std::vector<Value>& inputs,
                                       const std::map<std::string, Value>& feedback) {
        std::vector<Value> mirInputs(inTypes.size());
        for (size_t p = 0; p < inputs.size(); ++p) {
          mirInputs[static_cast<size_t>(inIdx[p])] =
              Value::fromInt(inTypes[static_cast<size_t>(inIdx[p])], inputs[p].toInt());
        }
        const mir::ExecResult r = mir::execute(f, mirInputs, feedback);
        std::vector<Value> outputs(dp.outputs.size());
        for (size_t p = 0; p < dp.outputs.size(); ++p) {
          outputs[p] = r.outputs[static_cast<size_t>(outIdx[p])];
        }
        return std::pair{std::move(outputs), r.nextFeedback};
      };
      try {
        const rtl::StreamTrace got = rtl::traceStreamingModel(kernel, dp, io, step);
        if (auto ce = compareTraces(dp, kernel, ref, got)) fail(VerifyEngine::MirExec, std::move(*ce));
      } catch (const std::exception& e) {
        failText(VerifyEngine::MirExec, fmt("mir execution failed: %0", e.what()));
      }
    }
  }

  // Engine 3, DpEval: dp::evaluate at the inferred (narrowed) widths.
  if (engineRequested(opt, VerifyEngine::DpEval)) {
    ++v.enginesRun;
    const rtl::StreamStep step = [&](const std::vector<Value>& inputs,
                                     const std::map<std::string, Value>& feedback) {
      dp::EvalResult r = dp::evaluate(dp, inputs, feedback);
      return std::pair{std::move(r.outputs), std::move(r.nextFeedback)};
    };
    try {
      const rtl::StreamTrace got = rtl::traceStreamingModel(kernel, dp, io, step);
      if (auto ce = compareTraces(dp, kernel, ref, got)) fail(VerifyEngine::DpEval, std::move(*ce));
    } catch (const std::exception& e) {
      failText(VerifyEngine::DpEval, fmt("dp evaluation failed: %0", e.what()));
    }
  }

  // Engines 4 and 5: the cycle-accurate Fig 2 system under each netlist
  // engine. Compared against the golden final state; if the two engines
  // also disagree with *each other*, a net-level lockstep replay localizes
  // the first diverging net and cycle.
  std::optional<interp::KernelIO> refHw, fastHw;
  const auto runSystem = [&](VerifyEngine e, rtl::SimEngine engine) -> std::optional<interp::KernelIO> {
    ++v.enginesRun;
    rtl::SystemOptions so;
    so.engine = engine;
    try {
      rtl::System system(kernel, dp, compiled.module, so);
      interp::KernelIO hw = system.run(io);
      if (auto ce = compareFinal(kernel, golden, hw)) fail(e, std::move(*ce));
      return hw;
    } catch (const std::exception& ex) {
      failText(e, fmt("system simulation failed: %0", ex.what()));
      return std::nullopt;
    }
  };
  if (engineRequested(opt, VerifyEngine::NetlistRef)) {
    refHw = runSystem(VerifyEngine::NetlistRef, rtl::SimEngine::Reference);
  }
  if (engineRequested(opt, VerifyEngine::FastSim)) {
    fastHw = runSystem(VerifyEngine::FastSim, rtl::SimEngine::Fast);
  }
  if (refHw && fastHw && compareFinal(kernel, *refHw, *fastHw)) {
    if (auto ce = lockstepNets(dp, compiled.module, ref)) fail(VerifyEngine::FastSim, std::move(*ce));
  }

  // Optional: the generated system-level testbench must self-report
  // "TESTBENCH PASSED" under both netlist engines.
  if (opt.checkTestbench) {
    try {
      const std::vector<vhdl::TestVector> vectors =
          vhdl::makeSystemVectors(kernel, dp, io, /*extraRandom=*/8, opt.seed, nullptr);
      for (const rtl::SimEngine engine : {rtl::SimEngine::Reference, rtl::SimEngine::Fast}) {
        const vhdl::TestbenchSimResult r =
            vhdl::simulateTestbench(dp, compiled.module, vectors, engine);
        if (!r.passed) {
          v.testbenchPassed = false;
          failText(engine == rtl::SimEngine::Reference ? VerifyEngine::NetlistRef
                                                       : VerifyEngine::FastSim,
                   "testbench: " + r.firstFailure);
        }
      }
    } catch (const std::exception& e) {
      v.testbenchPassed = false;
      failText(VerifyEngine::NetlistRef, fmt("testbench generation failed: %0", e.what()));
    } catch (const interp::InterpError& e) {
      v.testbenchPassed = false;
      failText(VerifyEngine::NetlistRef, fmt("testbench generation failed: %0", e.message));
    }
  }

  v.agree = v.disagreements.empty() && v.testbenchPassed;
  return v;
}

VerifyReport verifyConformance(const std::vector<CompileJob>& jobs, const VerifyOptions& opt) {
  CompileService service(opt.workers);
  const BatchResult batch = service.compileBatch(jobs);
  VerifyReport report;
  report.verdicts.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    report.verdicts.push_back(verifyKernel(jobs[i].name, jobs[i].source, batch.results[i], opt));
  }
  return report;
}

int VerifyReport::agreed() const {
  int n = 0;
  for (const auto& v : verdicts) n += v.outcome == CompileOutcome::Ok && v.agree;
  return n;
}

int VerifyReport::compileFailures() const {
  int n = 0;
  for (const auto& v : verdicts) n += v.outcome != CompileOutcome::Ok;
  return n;
}

bool VerifyReport::allAgree() const {
  for (const auto& v : verdicts) {
    if (v.outcome == CompileOutcome::Ok && !v.agree) return false;
  }
  return true;
}

std::string VerifyReport::summary() const {
  const int fails = compileFailures();
  const int agree = agreed();
  const int disagree = static_cast<int>(verdicts.size()) - fails - agree;
  std::string s = fmt("%0 kernels: %1 agree, %2 disagree", verdicts.size(), agree, disagree);
  if (fails > 0) s += fmt(", %0 failed to compile", fails);
  return s;
}

std::string VerifyReport::toJson() const {
  IndentWriter w;
  w.line("{");
  w.indent();
  w.line(fmt("\"kernels\": %0,", verdicts.size()));
  w.line(fmt("\"agreed\": %0,", agreed()));
  w.line(fmt("\"compileFailures\": %0,", compileFailures()));
  w.line("\"verdicts\": [");
  w.indent();
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const KernelVerdict& v = verdicts[i];
    w.line("{");
    w.indent();
    w.line(fmt("\"kernel\": \"%0\",", jsonEscape(v.kernel)));
    w.line(fmt("\"outcome\": \"%0\",", compileOutcomeName(v.outcome)));
    w.line(fmt("\"agree\": %0,", v.agree ? "true" : "false"));
    w.line(fmt("\"testbenchPassed\": %0,", v.testbenchPassed ? "true" : "false"));
    w.line(fmt("\"enginesRun\": %0,", v.enginesRun));
    w.line(fmt("\"iterations\": %0,", v.iterations));
    w.line(fmt("\"outputDigest\": \"%0\",", fmt("%0", v.outputDigest)));
    if (!v.compileError.empty()) w.line(fmt("\"compileError\": \"%0\",", jsonEscape(v.compileError)));
    w.line("\"disagreements\": [");
    w.indent();
    for (size_t j = 0; j < v.disagreements.size(); ++j) {
      const Counterexample& ce = v.disagreements[j];
      w.line(fmt("{\"engine\": \"%0\", \"port\": \"%1\", \"index\": %2, \"expected\": \"%3\", "
                 "\"got\": \"%4\", \"detail\": \"%5\"}%6",
                 verifyEngineName(ce.engine), jsonEscape(ce.port), ce.index, jsonEscape(ce.expected),
                 jsonEscape(ce.got), jsonEscape(ce.detail),
                 j + 1 < v.disagreements.size() ? "," : ""));
    }
    w.dedent();
    w.line("]");
    w.dedent();
    w.line(fmt("}%0", i + 1 < verdicts.size() ? "," : ""));
  }
  w.dedent();
  w.line("]");
  w.dedent();
  w.line("}");
  return w.str();
}

} // namespace roccc
