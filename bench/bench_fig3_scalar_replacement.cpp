// Reproduces Figure 3: the 5-tap FIR in (a) original C, (b) after scalar
// replacement — memory accesses isolated from the calculation — and (c) the
// data-path function handed to the back end.
#include <cstdio>

#include "frontend/ast.hpp"
#include "kernels.hpp"
#include "roccc/compiler.hpp"

int main() {
  using namespace roccc;
  Compiler c;
  const CompileResult r = c.compileSource(bench::kFir);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }

  std::printf("Figure 3 (a) - the FIR in original C:\n\n%s\n", bench::kFir);
  std::printf("Figure 3 (b) - after scalar replacement (window scalars A0..A4, one new\n"
              "element per iteration):\n\n%s\n", r.kernel.scalarReplacedText.c_str());
  std::printf("Figure 3 (c) - the function fed into the data path generator:\n\n%s\n",
              ast::printFunction(r.kernel.dpFunction()).c_str());
  std::printf("Access pattern extracted for the controller/buffer generators:\n");
  const auto& s = r.kernel.inputs[0];
  std::printf("  array %s: window extent %lld, stride %lld, %d accesses per iteration\n",
              s.arrayName.c_str(), static_cast<long long>(s.extent(0)),
              static_cast<long long>(s.strideForLoop(0, r.kernel.loops, 0)), s.accessCount());
  return 0;
}
