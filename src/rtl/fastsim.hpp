// FastSim: a compiled, slot-indexed netlist simulation engine.
//
// NetlistSim (rtl/netlist.hpp) is the readable reference: it re-dispatches
// on CellKind per cell per cycle and moves boxed Values through vectors.
// FastSim flattens a Module once, at construction, into a compact
// instruction stream — precomputed topological order, inline operand slot
// indices, per-net masks and sign-extension shifts — and executes it on raw
// uint64_t lanes. It also simulates *batches*: N independent input streams
// advance per eval()/tick() pass in a structure-of-arrays layout, so
// cosimulating a whole test-vector set costs one sweep of the instruction
// stream per cycle instead of N sequential runs.
//
// FastSim is locked to NetlistSim bit-for-bit by tests/fastsim_diff_test.cpp;
// NetlistSim stays as the oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"
#include "support/value.hpp"

namespace roccc::rtl {

/// Which cycle-accurate engine executes a Module.
///  - Reference: NetlistSim, the boxed-Value oracle.
///  - Fast: FastSim, the compiled slot-indexed engine (default).
enum class SimEngine { Reference, Fast };

const char* simEngineName(SimEngine e);

class FastSim {
 public:
  /// Compiles `m` for `batch` independent simulation lanes. The Module must
  /// outlive the simulator (ROM tables are referenced, not copied).
  explicit FastSim(const Module& m, int batch = 1);

  int batch() const { return batch_; }

  /// Drives an input port for the current cycle on one lane.
  void setInput(size_t port, const Value& v, int lane = 0);
  /// Same, from a signed integer (wraps modulo 2^width like Value::fromInt).
  void setInputInt(size_t port, int64_t v, int lane = 0);
  /// Propagates combinational logic on every lane.
  void eval();
  /// Clock edge on every lane: registers latch when `enable` is true (and
  /// the optional per-register clock-enable input is high on that lane).
  void tick(bool enable);
  /// Reads an output port on one lane (call after eval()).
  Value output(size_t port, int lane = 0) const;
  /// Reads any net on one lane (testing/debug).
  Value netValue(int net, int lane = 0) const;
  /// Resets registers to their initial values on every lane.
  void reset();

 private:
  // One opcode per evaluation recipe. Gt/Ge reuse Lt/Le with swapped
  // operands; signed/unsigned compare split is resolved at compile time.
  enum class Op : uint8_t {
    Add, Sub, Mul, Div, Rem, Neg,
    And, Or, Xor, Not,
    Shl, Shr,
    Eq, Ne, LtS, LtU, LeS, LeU,
    Mux, Rom, Slice, Concat, Resize,
  };

  /// Zero-extended operands use shift 0: the storage is already masked, so
  /// an arithmetic shift by zero is the identity and the sext hot path
  /// stays branchless.
  static constexpr uint8_t kNoSx = 0;

  /// 40 bytes: the whole instruction stream of a Table 1 module stays
  /// resident in L1 while the per-cycle loop sweeps it.
  struct Instr {
    Op op;
    uint8_t sxa = kNoSx, sxb = kNoSx, sxc = kNoSx; ///< sign-extension shifts
    int32_t dst = 0, a = 0, b = 0, c = 0; ///< lane-array base offsets
    uint64_t mask = ~uint64_t{0};         ///< result mask (2^width - 1)
    int32_t aux = 0; ///< Slice shift / Concat lo width / Rom table index
    bool flag = false; ///< Div/Rem: signed result type; Shr: signed operand
  };

  struct RomTable {
    const int64_t* data = nullptr;
    int64_t size = 0;
  };

  struct RegInfo {
    int32_t dst = 0, d = 0, en = -1; ///< lane-array base offsets (en<0: none)
    uint8_t sxd = kNoSx;             ///< sign-extension shift of the d input
    uint64_t mask = ~uint64_t{0};
    uint64_t init = 0;
  };

  int32_t slot(int net) const { return static_cast<int32_t>(net) * batch_; }

  /// The eval loop, specialized on the lane count (BN == 0: runtime batch_).
  /// Batch 1 — the System's cosimulation path — compiles with the inner
  /// lane loops folded away.
  template <int BN> void evalImpl();

  const Module& m_;
  int batch_;
  std::vector<Instr> prog_;       ///< combinational cells, topological order
  std::vector<RomTable> roms_;    ///< Rom cell tables, indexed by Instr::aux
  std::vector<RegInfo> regs_;
  std::vector<uint64_t> lanes_;   ///< net values, net-major: [net*batch + lane]
  std::vector<uint64_t> regState_;///< register state,       [reg*batch + lane]
};

} // namespace roccc::rtl
