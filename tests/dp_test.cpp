#include <gtest/gtest.h>

#include "dp/datapath.hpp"
#include "dp/eval.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/kernel.hpp"
#include "mir/exec.hpp"
#include "mir/lower.hpp"
#include "mir/passes.hpp"
#include "mir/ssa.hpp"
#include "support/strings.hpp"

namespace roccc::dp {
namespace {

using mir::FunctionIR;
using mir::Opcode;

ast::Module buildModule(const std::string& src) {
  DiagEngine diags;
  ast::Module m = ast::parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  EXPECT_TRUE(ast::analyze(m, diags)) << diags.dump();
  return m;
}

FunctionIR toSsaMir(const std::string& src, const std::string& fn, bool optimize = true) {
  ast::Module m = buildModule(src);
  FunctionIR f;
  DiagEngine diags;
  EXPECT_TRUE(mir::lowerToMir(m, fn, f, diags)) << diags.dump();
  mir::canonicalizeSideEffects(f);
  mir::buildSSA(f);
  if (optimize) mir::runStandardPasses(f);
  return f;
}

DataPath buildDp(const FunctionIR& f, BuildOptions opt = {}) {
  DataPath dp;
  DiagEngine diags;
  EXPECT_TRUE(buildDataPath(f, dp, diags, opt)) << diags.dump();
  return dp;
}

std::vector<Value> inputsOf(const FunctionIR& f, const std::vector<int64_t>& vals) {
  std::vector<Value> in;
  size_t vi = 0;
  for (const auto& p : f.params) {
    if (!p.isOutput) in.push_back(Value::fromInt(p.type, vals.at(vi++)));
  }
  return in;
}

const char* kIfElseSrc = R"(
  void if_else(int x1, int x2, int* x3, int* x4) {
    int a;
    int c;
    c = x1 - x2;
    if (c < x2)
      a = x1 * x1;
    else
      a = x1 * x2 + 3;
    c = c - a;
    *x3 = c;
    *x4 = a;
    return;
  }
)";

// --- structure (paper Fig 6) -------------------------------------------------

TEST(DpStructure, IfElseHasMuxAndPipeHardNodes) {
  FunctionIR f = toSsaMir(kIfElseSrc, "if_else", /*optimize=*/false);
  DataPath dp = buildDp(f);
  int softs = 0, muxes = 0, pipes = 0;
  for (const auto& n : dp.nodes) {
    switch (n.kind) {
      case NodeKind::Soft: ++softs; break;
      case NodeKind::Mux: ++muxes; break;
      case NodeKind::Pipe: ++pipes; break;
    }
  }
  // Paper Fig 6: soft nodes 1-4 plus one mux (node 7) and one pipe (node 6).
  EXPECT_EQ(softs, 4);
  EXPECT_EQ(muxes, 1);
  EXPECT_EQ(pipes, 1);
  EXPECT_EQ(dp.softNodeCount, 4);
  EXPECT_EQ(dp.hardNodeCount, 2);
  EXPECT_GE(dp.muxOpCount, 1); // at least 'a' merges
}

TEST(DpStructure, StraightLineHasNoHardNodes) {
  FunctionIR f = toSsaMir("void dp(int a, int b, int* o) { *o = a * b + a; }", "dp");
  DataPath dp = buildDp(f);
  EXPECT_EQ(dp.hardNodeCount, 0);
  EXPECT_EQ(dp.muxOpCount, 0);
}

TEST(DpStructure, DumpStructureMentionsNodes) {
  FunctionIR f = toSsaMir(kIfElseSrc, "if_else", false);
  DataPath dp = buildDp(f);
  const std::string s = dp.dumpStructure();
  EXPECT_NE(s.find("mux"), std::string::npos) << s;
  EXPECT_NE(s.find("pipe"), std::string::npos) << s;
  EXPECT_NE(s.find("->"), std::string::npos) << s;
}

// --- behavior: dp evaluation equals MIR execution ------------------------------

void expectEquivalent(const std::string& src, const std::string& fn,
                      const std::vector<std::vector<int64_t>>& inputSets, BuildOptions opt = {}) {
  FunctionIR f = toSsaMir(src, fn);
  DataPath dp = buildDp(f, opt);
  for (const auto& vals : inputSets) {
    const auto mirResult = mir::execute(f, inputsOf(f, vals), {});
    const auto dpResult = evaluate(dp, inputsOf(f, vals), {});
    ASSERT_EQ(mirResult.outputs.size(), dpResult.outputs.size());
    for (size_t i = 0; i < mirResult.outputs.size(); ++i) {
      EXPECT_EQ(mirResult.outputs[i].toInt(), dpResult.outputs[i].toInt())
          << "output " << i << " inputs " << join([&] {
               std::vector<std::string> s;
               for (auto v : vals) s.push_back(std::to_string(v));
               return s;
             }(), ",") << "\n" << dp.dump();
    }
  }
}

TEST(DpBehavior, IfElseMatchesMir) {
  std::vector<std::vector<int64_t>> sets;
  for (int a = -6; a <= 6; a += 3) {
    for (int b = -6; b <= 6; b += 2) sets.push_back({a, b});
  }
  expectEquivalent(kIfElseSrc, "if_else", sets);
}

TEST(DpBehavior, PaperValues) {
  FunctionIR f = toSsaMir(kIfElseSrc, "if_else");
  DataPath dp = buildDp(f);
  const auto r = evaluate(dp, inputsOf(f, {9, 2}), {});
  EXPECT_EQ(r.outputs[0].toInt(), -14);
  EXPECT_EQ(r.outputs[1].toInt(), 21);
}

TEST(DpBehavior, NestedBranches) {
  const char* src = R"(
    void dp(int a, int b, int* o) {
      int r;
      if (a < b) {
        if (a < 0) { r = -a; } else { r = a * 2; }
      } else {
        r = b + 1;
      }
      *o = r;
    }
  )";
  std::vector<std::vector<int64_t>> sets;
  for (int a = -5; a <= 5; a += 2) {
    for (int b = -5; b <= 5; b += 3) sets.push_back({a, b});
  }
  expectEquivalent(src, "dp", sets);
}

TEST(DpBehavior, ConditionalOutputWrites) {
  const char* src = R"(
    void dp(int a, int* o) {
      if (a < 0) { *o = -a; } else { *o = a * 3; }
    }
  )";
  expectEquivalent(src, "dp", {{-7}, {0}, {7}});
}

TEST(DpBehavior, NarrowTypesAndDivision) {
  const char* src = R"(
    void dp(uint8 n, uint8 d, uint8* q, uint8* r) {
      *q = n / d;
      *r = n % d;
    }
  )";
  std::vector<std::vector<int64_t>> sets = {{200, 7}, {255, 1}, {13, 255}, {42, 0}, {0, 5}};
  expectEquivalent(src, "dp", sets);
}

TEST(DpBehavior, FeedbackAccumulator) {
  FunctionIR f = toSsaMir(R"(
    int32 sum = 10;
    void acc_dp(int32 A0, int32* out) {
      int32 t;
      t = ROCCC_load_prev(sum) + A0;
      ROCCC_store2next(sum, t);
      *out = t;
    }
  )", "acc_dp");
  DataPath dp = buildDp(f);
  ASSERT_EQ(dp.feedbacks.size(), 1u);
  EXPECT_GE(dp.feedbacks[0].lprValue, 0);
  EXPECT_GE(dp.feedbacks[0].snxValue, 0);
  std::map<std::string, Value> fb;
  int64_t expect = 10;
  for (int t = 0; t < 5; ++t) {
    const auto r = evaluate(dp, {Value::ofInt(t + 1)}, fb);
    expect += t + 1;
    EXPECT_EQ(r.outputs[0].toInt(), expect);
    fb = r.nextFeedback;
  }
}

// --- pipelining (paper 4.2.3) ---------------------------------------------------

TEST(DpPipeline, DeepExpressionSplitsIntoStages) {
  // Chain of multiplies: far beyond one 6 ns stage.
  FunctionIR f = toSsaMir(R"(
    void dp(int16 a, int16 b, int* o) {
      *o = ((a * b) * (a + b)) * ((a - b) * (a + 3)) + a;
    }
  )", "dp");
  DataPath dp = buildDp(f);
  EXPECT_GE(dp.stageCount, 2) << dp.dump();
  // Pipeline registers were inserted.
  EXPECT_GT(dp.pipelineRegisterBits, 0);
}

TEST(DpPipeline, NoPipelineOptionKeepsSingleStage) {
  FunctionIR f = toSsaMir(R"(
    void dp(int16 a, int16 b, int* o) {
      *o = ((a * b) * (a + b)) * ((a - b) * (a + 3)) + a;
    }
  )", "dp");
  BuildOptions opt;
  opt.pipeline = false;
  DataPath dp = buildDp(f, opt);
  EXPECT_EQ(dp.stageCount, 1);
}

TEST(DpPipeline, FeedbackLoopStaysInOneStage) {
  // Multiply-accumulate: LPR -> add -> SNX must close in a single stage
  // even though mul+add exceed the target stage delay.
  FunctionIR f = toSsaMir(R"(
    int32 acc = 0;
    void mac_dp(int12 a, int12 b, int32* out) {
      int32 t;
      t = ROCCC_load_prev(acc) + a * b;
      ROCCC_store2next(acc, t);
      *out = t;
    }
  )", "mac_dp");
  BuildOptions opt;
  opt.targetStageDelayNs = 2.0; // force aggressive pipelining
  DataPath dp = buildDp(f, opt);
  // The add feeding SNX and the LPR read share a stage.
  const int lprDef = dp.values[static_cast<size_t>(dp.feedbacks[0].lprValue)].def;
  const int snxDef = dp.values[static_cast<size_t>(dp.feedbacks[0].snxValue)].def;
  ASSERT_GE(lprDef, 0);
  ASSERT_GE(snxDef, 0);
  EXPECT_EQ(dp.ops[static_cast<size_t>(lprDef)].stage, dp.ops[static_cast<size_t>(snxDef)].stage)
      << dp.dump();
  // Behavior is still a correct MAC across iterations.
  std::map<std::string, Value> fb;
  int64_t expect = 0;
  for (int i = 1; i <= 4; ++i) {
    const auto r = evaluate(dp, {Value::fromInt(ScalarType::make(12, true), i),
                                 Value::fromInt(ScalarType::make(12, true), i + 1)}, fb);
    expect += i * (i + 1);
    EXPECT_EQ(r.outputs[0].toInt(), expect);
    fb = r.nextFeedback;
  }
}

TEST(DpPipeline, StageMonotoneAlongDependencies) {
  FunctionIR f = toSsaMir(kIfElseSrc, "if_else");
  DataPath dp = buildDp(f);
  for (const auto& o : dp.ops) {
    for (int vid : o.operands) {
      const DpValue& v = dp.values[static_cast<size_t>(vid)];
      if (v.def < 0) continue;
      if (dp.ops[static_cast<size_t>(v.def)].op == Opcode::Ldc) continue;
      EXPECT_LE(dp.ops[static_cast<size_t>(v.def)].stage, o.stage) << dp.dump();
    }
  }
}

TEST(DpPipeline, TighterTargetMeansMoreStages) {
  const char* src = R"(
    void dp(int16 a, int16 b, int* o) {
      *o = (a * b + a) * (a - b) + (b * b - a) * (a + b);
    }
  )";
  FunctionIR f1 = toSsaMir(src, "dp");
  BuildOptions loose;
  loose.targetStageDelayNs = 50.0;
  BuildOptions tight;
  tight.targetStageDelayNs = 3.0;
  DataPath dpLoose = buildDp(f1, loose);
  DataPath dpTight = buildDp(f1, tight);
  EXPECT_LT(dpLoose.stageCount, dpTight.stageCount);
  // Same results either way.
  for (int a = -3; a <= 3; a += 3) {
    for (int b = -2; b <= 2; b += 2) {
      const auto in = inputsOf(f1, {a, b});
      EXPECT_EQ(evaluate(dpLoose, in, {}).outputs[0].toInt(),
                evaluate(dpTight, in, {}).outputs[0].toInt());
    }
  }
}

// --- bit-width inference (paper 4.2.4 / 5) ----------------------------------------

TEST(DpWidths, FirInferenceNarrowsSignals) {
  // 3*A0 with A0:int16 needs 18 bits, not 32.
  FunctionIR f = toSsaMir(R"(
    void fir_dp(int16 A0, int16 A1, int16 A2, int16 A3, int16 A4, int16* out) {
      *out = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4;
    }
  )", "fir_dp");
  DataPath dp = buildDp(f);
  EXPECT_GT(dp.narrowedBits, 0);
  for (const auto& v : dp.values) {
    if (v.def >= 0 && dp.ops[static_cast<size_t>(v.def)].op == Opcode::Ldc) continue;
    EXPECT_LE(v.width, 22) << v.name << " unexpectedly wide\n" << dp.dump();
  }
}

TEST(DpWidths, ComparisonsAreOneBit) {
  FunctionIR f = toSsaMir("void dp(int a, int b, int* o) { if (a < b) { *o = 1; } else { *o = 0; } }", "dp");
  DataPath dp = buildDp(f);
  bool sawCmp = false;
  for (const auto& o : dp.ops) {
    if (o.op == Opcode::Slt) {
      sawCmp = true;
      EXPECT_EQ(dp.values[static_cast<size_t>(o.result)].width, 1);
    }
  }
  EXPECT_TRUE(sawCmp);
}

TEST(DpWidths, LutRangeBoundsOutputWidth) {
  FunctionIR f = toSsaMir(R"(
    const int16 T[4] = {0, 5, 9, 12};
    void dp(uint2 i, int16* o) { *o = ROCCC_lookup(T, i); }
  )", "dp");
  DataPath dp = buildDp(f);
  for (const auto& o : dp.ops) {
    if (o.op == Opcode::Lut) {
      EXPECT_LE(dp.values[static_cast<size_t>(o.result)].width, 5); // max 12 -> 4..5 bits
    }
  }
}

TEST(DpWidths, InferenceDisabledKeepsDeclaredWidths) {
  FunctionIR f = toSsaMir("void dp(int8 a, int8 b, int* o) { *o = a + b; }", "dp");
  BuildOptions opt;
  opt.inferBitWidths = false;
  DataPath dp = buildDp(f, opt);
  EXPECT_EQ(dp.narrowedBits, 0);
}

// Property sweep: narrowing never changes results across a range of kernels.
class WidthSoundness : public ::testing::TestWithParam<const char*> {};

TEST_P(WidthSoundness, NarrowedEqualsDeclared) {
  const std::string src = GetParam();
  FunctionIR f = toSsaMir(src, "dp");
  BuildOptions narrow;
  BuildOptions wide;
  wide.inferBitWidths = false;
  DataPath dpN = buildDp(f, narrow);
  DataPath dpW = buildDp(f, wide);
  // Enumerate small input space: up to 2 inputs, try 25 combos.
  std::vector<const mir::FunctionIR::Param*> ins;
  for (const auto& p : f.params) {
    if (!p.isOutput) ins.push_back(&p);
  }
  std::vector<int64_t> probes = {-130, -7, -1, 0, 1, 3, 127, 255, 1000};
  std::vector<std::vector<int64_t>> sets;
  if (ins.size() == 1) {
    for (int64_t v : probes) sets.push_back({v});
  } else if (ins.size() == 2) {
    for (int64_t a : probes) {
      for (int64_t b : probes) sets.push_back({a, b});
    }
  }
  for (const auto& vals : sets) {
    const auto in = inputsOf(f, vals);
    const auto rn = evaluate(dpN, in, {});
    const auto rw = evaluate(dpW, in, {});
    for (size_t i = 0; i < rn.outputs.size(); ++i) {
      ASSERT_EQ(rn.outputs[i].toInt(), rw.outputs[i].toInt())
          << src << "\ninputs: " << vals[0] << (vals.size() > 1 ? "," + std::to_string(vals[1]) : "");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, WidthSoundness,
    ::testing::Values(
        "void dp(int8 a, int8 b, int16* o) { *o = a * b; }",
        "void dp(int8 a, int8 b, int8* o) { *o = a + b; }",
        "void dp(uint8 a, uint8 b, uint8* o) { *o = (a + b) / 2; }",
        "void dp(int16 a, int* o) { *o = a * a - a; }",
        "void dp(uint8 a, uint8 b, uint8* o) { *o = a / b; }",
        "void dp(int8 a, int* o) { if (a < 0) { *o = -a; } else { *o = a; } }",
        "void dp(uint8 a, uint8* o) { *o = (a >> 3) + (a & 7); }",
        "void dp(int8 a, int8 b, int* o) { *o = (a << 4) - b * 100; }"));

// --- CSD constant multiplier decomposition (multiplier style LUT) ---------------

TEST(DpMultStyle, LutStyleDecomposesConstMultiplies) {
  const char* src = R"(
    void fir_dp(int16 A0, int16 A1, int16* out) {
      *out = 3*A0 + 5*A1;
    }
  )";
  FunctionIR f = toSsaMir(src, "fir_dp");
  BuildOptions lut;
  lut.multStyle = BuildOptions::MultStyle::Lut;
  BuildOptions m18;
  m18.multStyle = BuildOptions::MultStyle::Mult18;
  DataPath dpLut = buildDp(f, lut);
  DataPath dpM18 = buildDp(f, m18);
  int mulLut = 0, mulM18 = 0;
  for (const auto& o : dpLut.ops) {
    if (o.op == Opcode::Mul) ++mulLut;
  }
  for (const auto& o : dpM18.ops) {
    if (o.op == Opcode::Mul) ++mulM18;
  }
  EXPECT_EQ(mulLut, 0) << dpLut.dump();  // decomposed to shift-adds
  EXPECT_EQ(mulM18, 2) << dpM18.dump();  // kept as hardware multipliers
  // Same numbers either way.
  for (int a = -300; a <= 300; a += 77) {
    for (int b = -300; b <= 300; b += 91) {
      const std::vector<Value> in = {Value::fromInt(ScalarType::make(16, true), a),
                                     Value::fromInt(ScalarType::make(16, true), b)};
      EXPECT_EQ(evaluate(dpLut, in, {}).outputs[0].toInt(),
                evaluate(dpM18, in, {}).outputs[0].toInt());
    }
  }
}

TEST(DpMultStyle, CsdHandlesAwkwardConstants) {
  for (int64_t c : {7, 9, 23, 100, 255, -3, -45, 1, 0, 1023}) {
    const std::string src = fmt("void dp(int16 a, int* o) { *o = a * %0; }", c);
    FunctionIR f = toSsaMir(src, "dp");
    DataPath dp = buildDp(f); // default LUT style
    for (int a = -100; a <= 100; a += 33) {
      const auto r = evaluate(dp, {Value::fromInt(ScalarType::make(16, true), a)}, {});
      EXPECT_EQ(r.outputs[0].toInt(), a * c) << "c=" << c << " a=" << a << "\n" << dp.dump();
    }
  }
}

// --- stats -------------------------------------------------------------------------

TEST(DpStats, BalanceRegistersCountedForSkewedPaths) {
  // A value produced early and consumed late must be carried through
  // every intermediate stage (section 4.2.2 "adjoining" rule).
  FunctionIR f = toSsaMir(R"(
    void dp(int16 a, int16 b, int* o) {
      *o = ((((a * b) * (a + 1)) * (b + 1)) * (a + 2)) + b;
    }
  )", "dp");
  BuildOptions opt;
  opt.targetStageDelayNs = 4.0;
  DataPath dp = buildDp(f, opt);
  ASSERT_GE(dp.stageCount, 3) << dp.dump();
  EXPECT_GT(dp.balanceRegisterBits, 0) << dp.dump(); // 'b' skips stages
}

} // namespace
} // namespace roccc::dp
