file(REMOVE_RECURSE
  "CMakeFiles/annotate_verilog_test.dir/annotate_verilog_test.cpp.o"
  "CMakeFiles/annotate_verilog_test.dir/annotate_verilog_test.cpp.o.d"
  "annotate_verilog_test"
  "annotate_verilog_test.pdb"
  "annotate_verilog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_verilog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
