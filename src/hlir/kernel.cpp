#include "hlir/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "frontend/sema.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::hlir {

using namespace roccc::ast;

// ---------------------------------------------------------------------------
// Stream geometry
// ---------------------------------------------------------------------------

int64_t Stream::extent(size_t d) const {
  int64_t lo = offsets[0][d], hi = offsets[0][d];
  for (const auto& off : offsets) {
    lo = std::min(lo, off[d]);
    hi = std::max(hi, off[d]);
  }
  return hi - lo + 1;
}

int64_t Stream::minOffset(size_t d) const {
  int64_t lo = offsets[0][d];
  for (const auto& off : offsets) lo = std::min(lo, off[d]);
  return lo;
}

int64_t Stream::strideForLoop(size_t d, const std::vector<LoopDim>& loops, int loop) const {
  if (dimMap[d].loop != loop) return 0;
  return dimMap[d].coeff * loops[static_cast<size_t>(loop)].step;
}

int64_t Stream::flatAddress(size_t a, const std::vector<int64_t>& ivs) const {
  int64_t flat = 0;
  for (size_t d = 0; d < dims.size(); ++d) {
    const int64_t base = dimMap[d].loop >= 0 ? dimMap[d].coeff * ivs[static_cast<size_t>(dimMap[d].loop)] : 0;
    flat = flat * dims[d] + base + offsets[a][d];
  }
  return flat;
}

// ---------------------------------------------------------------------------
// Affine analysis
// ---------------------------------------------------------------------------

namespace {

AffineForm invalidForm() { return {}; }

AffineForm combine(const AffineForm& a, const AffineForm& b, int64_t bScale) {
  AffineForm r;
  if (!a.valid || !b.valid) return invalidForm();
  r.valid = true;
  r.constant = a.constant + bScale * b.constant;
  r.terms = a.terms;
  for (const auto& [d, c] : b.terms) {
    bool found = false;
    for (auto& [rd, rc] : r.terms) {
      if (rd == d) {
        rc += bScale * c;
        found = true;
        break;
      }
    }
    if (!found) r.terms.emplace_back(d, bScale * c);
  }
  std::erase_if(r.terms, [](const auto& t) { return t.second == 0; });
  return r;
}

AffineForm scale(const AffineForm& a, int64_t s) {
  AffineForm r = a;
  r.constant *= s;
  for (auto& [d, c] : r.terms) c *= s;
  std::erase_if(r.terms, [](const auto& t) { return t.second == 0; });
  return r;
}

} // namespace

AffineForm analyzeAffine(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      AffineForm f;
      f.valid = true;
      f.constant = static_cast<const IntLitExpr&>(e).value;
      return f;
    }
    case ExprKind::VarRef: {
      AffineForm f;
      f.valid = true;
      f.terms.emplace_back(static_cast<const VarRefExpr&>(e).decl, 1);
      return f;
    }
    case ExprKind::Cast:
      return analyzeAffine(*static_cast<const CastExpr&>(e).operand);
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op != UnOp::Neg) return invalidForm();
      return scale(analyzeAffine(*u.operand), -1);
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      const AffineForm l = analyzeAffine(*b.lhs);
      const AffineForm r = analyzeAffine(*b.rhs);
      switch (b.op) {
        case BinOp::Add: return combine(l, r, 1);
        case BinOp::Sub: return combine(l, r, -1);
        case BinOp::Mul:
          if (l.valid && l.terms.empty()) return scale(r, l.constant);
          if (r.valid && r.terms.empty()) return scale(l, r.constant);
          return invalidForm();
        case BinOp::Shl:
          if (r.valid && r.terms.empty() && r.constant >= 0 && r.constant < 31) {
            return scale(l, int64_t{1} << r.constant);
          }
          return invalidForm();
        default:
          return invalidForm();
      }
    }
    default:
      return invalidForm();
  }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

namespace {

struct LoopNest {
  std::vector<const ForStmt*> loops;
  const BlockStmt* computeBody = nullptr;
};

/// Requires: fn.body = [pre stmts] for-nest [post stmts]; the nest is
/// perfect (each loop's body contains exactly the next loop).
struct KernelShape {
  std::vector<const Stmt*> preStmts;
  LoopNest nest;
  std::vector<const Stmt*> postStmts;
  bool ok = false;
};

KernelShape decomposeKernel(const Function& fn, DiagEngine& diags) {
  KernelShape shape;
  const ForStmt* loop = nullptr;
  for (const auto& s : fn.body->stmts) {
    if (s->kind == StmtKind::For) {
      if (loop) {
        diags.error(s->loc, fmt("kernel '%0': only one top-level loop nest is supported "
                                "(use loop fusion first)", fn.name));
        return shape;
      }
      loop = static_cast<const ForStmt*>(s.get());
    } else if (!loop) {
      shape.preStmts.push_back(s.get());
    } else {
      shape.postStmts.push_back(s.get());
    }
  }
  if (!loop) {
    diags.error(fn.loc, fmt("kernel '%0' contains no loop", fn.name));
    return shape;
  }
  // Descend the perfect nest.
  const ForStmt* cur = loop;
  for (;;) {
    shape.nest.loops.push_back(cur);
    const Stmt* body = cur->body.get();
    const BlockStmt* block = body->kind == StmtKind::Block ? static_cast<const BlockStmt*>(body) : nullptr;
    const ForStmt* onlyLoop = nullptr;
    bool onlyLoopAlone = false;
    if (block) {
      if (block->stmts.size() == 1 && block->stmts[0]->kind == StmtKind::For) {
        onlyLoop = static_cast<const ForStmt*>(block->stmts[0].get());
        onlyLoopAlone = true;
      }
    } else if (body->kind == StmtKind::For) {
      onlyLoop = static_cast<const ForStmt*>(body);
      onlyLoopAlone = true;
    }
    if (onlyLoop && onlyLoopAlone) {
      cur = onlyLoop;
      continue;
    }
    // This is the compute body.
    if (!block) {
      diags.error(body->loc, "kernel loop body must be a block");
      return shape;
    }
    shape.nest.computeBody = block;
    break;
  }
  if (shape.nest.loops.size() > 2) {
    diags.error(loop->loc, fmt("kernel '%0': loop nests deeper than 2 are not supported by the "
                               "smart-buffer model", fn.name));
    return shape;
  }
  shape.ok = true;
  return shape;
}

/// Read-before-write classification of scalars in the compute body.
/// A variable whose first dynamic reference can be a read carries its value
/// across iterations => feedback candidate.
class ReadFirstAnalysis {
 public:
  void run(const BlockStmt& body) {
    std::set<const VarDecl*> written;
    walkBlock(body, written);
  }

  bool readFirst(const VarDecl* d) const { return readFirst_.count(d) > 0; }
  bool written(const VarDecl* d) const { return everWritten_.count(d) > 0; }
  bool read(const VarDecl* d) const { return everRead_.count(d) > 0; }

 private:
  std::set<const VarDecl*> readFirst_, everWritten_, everRead_;

  void noteRead(const VarDecl* d, const std::set<const VarDecl*>& written) {
    if (!d) return;
    everRead_.insert(d);
    if (!written.count(d)) readFirst_.insert(d);
  }

  void readsInExpr(const Expr& e, const std::set<const VarDecl*>& written) {
    forEachExpr(e, [&](const Expr& sub) {
      if (sub.kind == ExprKind::VarRef) noteRead(static_cast<const VarRefExpr&>(sub).decl, written);
    });
  }

  void walkBlock(const BlockStmt& b, std::set<const VarDecl*>& written) {
    for (const auto& s : b.stmts) walkStmt(*s, written);
  }

  void walkStmt(const Stmt& s, std::set<const VarDecl*>& written) {
    switch (s.kind) {
      case StmtKind::Block:
        walkBlock(static_cast<const BlockStmt&>(s), written);
        break;
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) readsInExpr(*d.init, written);
        written.insert(&d.var); // a local decl always defines
        everWritten_.insert(&d.var);
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        for (const auto& i : a.target.indices) readsInExpr(*i, written);
        readsInExpr(*a.value, written);
        if (a.target.kind == LValue::Kind::Var && a.target.decl) {
          written.insert(a.target.decl);
          everWritten_.insert(a.target.decl);
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        readsInExpr(*i.cond, written);
        std::set<const VarDecl*> thenW = written, elseW = written;
        walkStmt(*i.thenBody, thenW);
        if (i.elseBody) walkStmt(*i.elseBody, elseW);
        // Definitely-written = written on both paths.
        std::set<const VarDecl*> joined;
        for (const VarDecl* d : thenW) {
          if (elseW.count(d)) joined.insert(d);
        }
        written = std::move(joined);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        readsInExpr(*f.begin, written);
        readsInExpr(*f.end, written);
        // Body may or may not execute; treat like a branch.
        std::set<const VarDecl*> bodyW = written;
        bodyW.insert(f.inductionDecl);
        everWritten_.insert(f.inductionDecl);
        walkStmt(*f.body, bodyW);
        break;
      }
      case StmtKind::Return:
        break;
      case StmtKind::CallStmt: {
        const auto& c = static_cast<const CallExpr&>(*static_cast<const CallStmt&>(s).call);
        if (c.callee == intrinsics::kStoreNext && c.args.size() == 2) {
          readsInExpr(*c.args[1], written);
          const auto& target = static_cast<const VarRefExpr&>(*c.args[0]);
          if (target.decl) {
            written.insert(target.decl);
            everWritten_.insert(target.decl);
          }
          break;
        }
        if (c.callee == intrinsics::kLoadPrev && c.args.size() == 1) {
          // Explicit "previous value" read: by definition read-first.
          const auto& v = static_cast<const VarRefExpr&>(*c.args[0]);
          if (v.decl) {
            everRead_.insert(v.decl);
            readFirst_.insert(v.decl);
          }
          break;
        }
        for (const auto& a : c.args) readsInExpr(*a, written);
        break;
      }
    }
  }
};

} // namespace

// The main extraction routine. Kept as one orchestrating function with
// focused lambdas: the stages mirror the paper's presentation order.
bool extractKernel(const Module& m, const std::string& fnName, KernelInfo& out, DiagEngine& diags) {
  faultpoint("hlir.extract-kernel");
  const Function* fnPtr = m.findFunction(fnName);
  if (!fnPtr) {
    diags.error({}, fmt("no kernel named '%0'", fnName));
    return false;
  }
  const Function& fn = *fnPtr;

  // ---- stage 1: shape ------------------------------------------------------
  KernelShape shape = decomposeKernel(fn, diags);
  if (!shape.ok) return false;

  out = KernelInfo{};
  out.kernelName = fn.name;
  out.dpName = fn.name + "_dp";

  std::vector<const VarDecl*> ivDecls;
  for (const ForStmt* l : shape.nest.loops) {
    auto b = evalConstant(*l->begin);
    auto e = evalConstant(*l->end);
    if (!b || !e) {
      diags.error(l->loc, fmt("kernel '%0': loop bounds must be compile-time constants", fn.name));
      return false;
    }
    if (*e <= *b) {
      diags.error(l->loc, fmt("kernel '%0': loop over [%1, %2) never executes", fn.name, *b, *e));
      return false;
    }
    out.loops.push_back({l->inductionVar, *b, *e, l->step});
    ivDecls.push_back(l->inductionDecl);
  }

  auto loopIndexOf = [&](const VarDecl* d) -> int {
    for (size_t i = 0; i < ivDecls.size(); ++i)
      if (ivDecls[i] == d) return static_cast<int>(i);
    return -1;
  };

  const BlockStmt& body = *shape.nest.computeBody;
  bool failed = false;
  auto fail = [&](SourceLoc loc, const std::string& msg) {
    diags.error(loc, msg);
    failed = true;
  };

  // ---- stage 2: pre/post statement interpretation --------------------------
  // Pre-loop: local declarations and constant scalar initializations.
  std::map<const VarDecl*, int64_t> preInit;       // initial values
  std::set<const VarDecl*> preDeclared;
  for (const Stmt* s : shape.preStmts) {
    if (s->kind == StmtKind::Decl) {
      const auto& d = static_cast<const DeclStmt&>(*s);
      preDeclared.insert(&d.var);
      if (d.init) {
        auto v = evalConstant(*d.init);
        if (!v) {
          fail(d.loc, fmt("pre-loop initializer of '%0' must be constant", d.var.name));
          continue;
        }
        preInit[&d.var] = *v;
      } else {
        preInit[&d.var] = 0;
      }
    } else if (s->kind == StmtKind::Assign) {
      const auto& a = static_cast<const AssignStmt&>(*s);
      auto v = evalConstant(*a.value);
      if (a.target.kind != LValue::Kind::Var || !v) {
        fail(a.loc, "pre-loop statements must be constant scalar initializations");
        continue;
      }
      preInit[a.target.decl] = *v;
    } else {
      fail(s->loc, "unsupported statement before the kernel loop");
    }
  }
  // Post-loop: '*out = var' exports and 'return'.
  std::map<const VarDecl*, std::string> exports; // var -> out-param name
  for (const Stmt* s : shape.postStmts) {
    if (s->kind == StmtKind::Return) continue;
    if (s->kind == StmtKind::Assign) {
      const auto& a = static_cast<const AssignStmt&>(*s);
      if (a.target.kind == LValue::Kind::Deref && a.value->kind == ExprKind::VarRef) {
        exports[static_cast<const VarRefExpr&>(*a.value).decl] = a.target.name;
        continue;
      }
    }
    fail(s->loc, "post-loop statements must be '*out = scalar' exports");
  }
  if (failed) return false;

  // ---- stage 3: access scan -------------------------------------------------
  struct StreamBuild {
    const VarDecl* array = nullptr;
    std::vector<DimMap> dimMap;
    std::vector<std::vector<int64_t>> offsets;
    bool isOutput = false;
  };
  std::map<const VarDecl*, StreamBuild> streamBuilds;
  std::vector<const VarDecl*> streamOrder; // stable order of first touch

  auto registerAccess = [&](const VarDecl* array, const std::vector<ExprPtr>& indices, bool isWrite,
                            SourceLoc loc) -> int {
    auto [it, inserted] = streamBuilds.try_emplace(array);
    StreamBuild& sb = it->second;
    if (inserted) {
      sb.array = array;
      sb.dimMap.assign(array->type.dims.size(), DimMap{});
      sb.isOutput = isWrite;
      streamOrder.push_back(array);
    }
    if (sb.isOutput != isWrite) {
      fail(loc, fmt("array '%0' is both read and written in the kernel", array->name));
      return -1;
    }
    std::vector<int64_t> offset(indices.size(), 0);
    for (size_t d = 0; d < indices.size(); ++d) {
      const AffineForm af = analyzeAffine(*indices[d]);
      if (!af.valid || af.terms.size() > 1) {
        fail(loc, fmt("index %0 of '%1' is not affine in a single loop variable", d, array->name));
        return -1;
      }
      int loop = -1;
      int64_t coeff = 0;
      if (!af.terms.empty()) {
        loop = loopIndexOf(af.terms[0].first);
        coeff = af.terms[0].second;
        if (loop < 0) {
          fail(loc, fmt("index %0 of '%1' uses a non-induction variable", d, array->name));
          return -1;
        }
        if (coeff <= 0) {
          fail(loc, fmt("index %0 of '%1' must advance forward", d, array->name));
          return -1;
        }
      }
      DimMap& dm = sb.dimMap[d];
      if (dm.loop == -1 && loop != -1) {
        dm.loop = loop;
        dm.coeff = coeff;
      } else if (loop != -1 && (dm.loop != loop || dm.coeff != coeff)) {
        fail(loc, fmt("accesses to '%0' disagree on the index pattern of dimension %1", array->name, d));
        return -1;
      }
      offset[d] = af.constant;
    }
    for (size_t i = 0; i < sb.offsets.size(); ++i) {
      if (sb.offsets[i] == offset) return static_cast<int>(i);
    }
    sb.offsets.push_back(std::move(offset));
    return static_cast<int>(sb.offsets.size() - 1);
  };

  auto isInputArray = [&](const VarDecl* d) {
    return d->type.isArray() &&
           ((d->storage == Storage::Param && d->mode == ParamMode::In) ||
            (d->storage == Storage::Global && !(d->isConst && !d->init.empty())));
  };
  auto isLookupTable = [&](const VarDecl* d) {
    return d->type.isArray() && d->isConst && !d->init.empty();
  };

  std::set<const VarDecl*> lutTables;
  // Scan all reads.
  forEachExprInStmt(body, [&](const Expr& e) {
    if (e.kind != ExprKind::ArrayRef) return;
    const auto& a = static_cast<const ArrayRefExpr&>(e);
    if (!a.decl) return;
    if (isLookupTable(a.decl)) {
      // Affine-in-iv const-table reads stream like inputs; dynamic-index
      // reads become ROM lookups during the rewrite.
      bool affineInIv = true;
      for (const auto& idx : a.indices) {
        const AffineForm af = analyzeAffine(*idx);
        if (!af.valid || (af.terms.size() == 1 && loopIndexOf(af.terms[0].first) < 0) || af.terms.size() > 1) {
          affineInIv = false;
        }
      }
      if (!affineInIv) {
        lutTables.insert(a.decl);
        return;
      }
    }
    if (isInputArray(a.decl) || isLookupTable(a.decl)) {
      registerAccess(a.decl, a.indices, /*isWrite=*/false, a.loc);
    }
  });
  // The ROCCC_lookup intrinsic's table argument must not be treated as a
  // stream; record the table instead.
  forEachExprInStmt(body, [&](const Expr& e) {
    if (e.kind != ExprKind::Call) return;
    const auto& c = static_cast<const CallExpr&>(e);
    if (c.callee == intrinsics::kLookup && !c.args.empty() && c.args[0]->kind == ExprKind::VarRef) {
      const auto& t = static_cast<const VarRefExpr&>(*c.args[0]);
      if (t.decl) lutTables.insert(t.decl);
    }
  });
  // Scan writes.
  forEachStmt(body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Assign) return;
    const auto& a = static_cast<const AssignStmt&>(s);
    if (a.target.kind == LValue::Kind::ArrayElem && a.target.decl) {
      registerAccess(a.target.decl, a.target.indices, /*isWrite=*/true, a.loc);
    }
  });
  if (failed) return false;

  // ---- stage 4: scalar classification ---------------------------------------
  ReadFirstAnalysis rfa;
  rfa.run(body);

  std::vector<const VarDecl*> feedbackDecls;
  std::vector<const VarDecl*> scalarParamInputs;
  std::set<const VarDecl*> inductionValueUses;
  std::vector<const VarDecl*> scalarOutDecls;

  // Scalars referenced inside the body.
  std::set<const VarDecl*> bodyScalars;
  forEachExprInStmt(body, [&](const Expr& e) {
    if (e.kind == ExprKind::VarRef && static_cast<const VarRefExpr&>(e).decl) {
      bodyScalars.insert(static_cast<const VarRefExpr&>(e).decl);
    }
  });
  forEachStmt(body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Assign) {
      const auto& a = static_cast<const AssignStmt&>(s);
      if (a.target.kind == LValue::Kind::Var && a.target.decl) bodyScalars.insert(a.target.decl);
      if (a.target.kind == LValue::Kind::Deref && a.target.decl) scalarOutDecls.push_back(a.target.decl);
    }
  });
  // Locals declared inside the body.
  std::set<const VarDecl*> bodyLocals;
  forEachStmt(body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Decl) bodyLocals.insert(&static_cast<const DeclStmt&>(s).var);
  });

  // Remove array refs (handled as streams) and intrinsics' table args.
  for (const VarDecl* d : bodyScalars) {
    if (d->type.isArray()) continue;
    const int li = loopIndexOf(d);
    if (li >= 0) {
      // Induction uses that survive index analysis (value uses) are found
      // during the rewrite below; provisionally note the variable.
      continue;
    }
    if (bodyLocals.count(d)) continue; // per-iteration temp
    if (d->storage == Storage::Param) {
      if (d->mode == ParamMode::In) {
        scalarParamInputs.push_back(d);
      }
      continue; // Out scalar params handled via scalarOutDecls
    }
    // Global or pre-loop local.
    if (rfa.written(d) && rfa.readFirst(d)) {
      feedbackDecls.push_back(d);
    } else if (rfa.written(d)) {
      // Written every iteration, never read across iterations: still a
      // state variable if exported, otherwise a temp.
      if (exports.count(d)) feedbackDecls.push_back(d);
    } else {
      // Read-only loop-invariant local/global: constant input.
      if (preInit.count(d) || !d->init.empty()) {
        // Becomes a literal via its constant initial value — treat as
        // feedback with no writes (register holding a constant)? Simpler:
        // a scalar input bound to the constant is wasteful; substitute in
        // the rewrite below.
      } else {
        fail(d->loc, fmt("loop-invariant scalar '%0' has no constant initial value", d->name));
      }
    }
  }
  // Exports of variables that are not feedbacks (e.g. exporting a scalar
  // param) are unsupported.
  for (const auto& [d, outName] : exports) {
    if (std::find(feedbackDecls.begin(), feedbackDecls.end(), d) == feedbackDecls.end()) {
      fail(d->loc, fmt("exported scalar '%0' is not a loop-carried variable", d->name));
    }
  }
  if (failed) return false;

  // ---- stage 5: stream finalization -----------------------------------------
  auto finalizeStream = [&](const StreamBuild& sb) {
    Stream st;
    st.arrayName = sb.array->name;
    st.elemType = sb.array->type.scalar;
    st.dims = sb.array->type.dims;
    st.dimMap = sb.dimMap;
    st.offsets = sb.offsets;
    // Sort accesses row-major by offset for deterministic naming.
    std::vector<size_t> order(st.offsets.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return st.offsets[a] < st.offsets[b]; });
    std::vector<std::vector<int64_t>> sorted;
    for (size_t i : order) sorted.push_back(st.offsets[i]);
    st.offsets = std::move(sorted);
    for (size_t i = 0; i < st.offsets.size(); ++i) {
      st.scalarNames.push_back(fmt(sb.isOutput ? "%0_o%1" : "%0%1", sb.array->name, i));
    }
    return st;
  };

  std::map<const VarDecl*, int> streamIndex; // array decl -> index into inputs/outputs
  for (const VarDecl* d : streamOrder) {
    const StreamBuild& sb = streamBuilds.at(d);
    Stream st = finalizeStream(sb);
    // Bounds validation over the whole iteration space (corners suffice:
    // affine, positive coefficients).
    for (size_t dim = 0; dim < st.dims.size(); ++dim) {
      const DimMap& dm = st.dimMap[dim];
      const int64_t first = dm.loop >= 0 ? dm.coeff * out.loops[static_cast<size_t>(dm.loop)].begin : 0;
      const auto& lp = dm.loop >= 0 ? out.loops[static_cast<size_t>(dm.loop)] : LoopDim{};
      const int64_t lastIv = dm.loop >= 0 ? lp.begin + (lp.trips() - 1) * lp.step : 0;
      const int64_t last = dm.loop >= 0 ? dm.coeff * lastIv : 0;
      if (first + st.minOffset(dim) < 0 ||
          last + st.minOffset(dim) + st.extent(dim) - 1 >= st.dims[dim]) {
        fail(d->loc, fmt("window of '%0' overruns dimension %1 (size %2)", st.arrayName, dim,
                         st.dims[dim]));
      }
    }
    if (sb.isOutput) {
      streamIndex[d] = static_cast<int>(out.outputs.size());
      out.outputs.push_back(std::move(st));
    } else {
      streamIndex[d] = static_cast<int>(out.inputs.size());
      out.inputs.push_back(std::move(st));
    }
  }
  if (failed) return false;

  // ---- stage 6: data-path function construction ------------------------------
  // dpModule: feedback globals + lookup tables + the dp function.
  for (const VarDecl* d : feedbackDecls) {
    Feedback fb;
    fb.name = d->name;
    fb.type = d->type.scalar;
    if (auto it = preInit.find(d); it != preInit.end()) {
      fb.initial = it->second;
    } else if (!d->init.empty()) {
      fb.initial = d->init[0];
    }
    if (auto it = exports.find(d); it != exports.end()) fb.exportedTo = it->second;
    out.feedbacks.push_back(fb);

    VarDecl g;
    g.name = d->name;
    g.type = d->type;
    g.storage = Storage::Global;
    g.init.push_back(fb.initial);
    g.loc = d->loc;
    out.dpModule.globals.push_back(std::move(g));
  }
  for (const VarDecl* t : lutTables) {
    out.dpModule.globals.push_back(*t);
  }

  Function dp;
  dp.name = out.dpName;
  dp.loc = fn.loc;

  // Input params: stream scalars, then loop-invariant scalar params, then
  // induction values (appended lazily during the rewrite when used).
  for (const Stream& st : out.inputs) {
    for (const std::string& n : st.scalarNames) {
      VarDecl p;
      p.name = n;
      p.type = Type::scalarOf(st.elemType);
      p.storage = Storage::Param;
      p.mode = ParamMode::In;
      dp.params.push_back(std::move(p));
    }
  }
  for (const VarDecl* d : scalarParamInputs) {
    VarDecl p;
    p.name = d->name;
    p.type = d->type;
    p.storage = Storage::Param;
    p.mode = ParamMode::In;
    dp.params.push_back(std::move(p));
    out.scalarInputs.push_back({d->name, d->type.scalar, false, -1});
  }

  std::set<int> inductionInputs; // loop indices whose value feeds the dp

  // Output params.
  for (const Stream& st : out.outputs) {
    for (const std::string& n : st.scalarNames) {
      VarDecl p;
      p.name = n;
      p.type = Type::scalarOf(st.elemType);
      p.storage = Storage::Param;
      p.mode = ParamMode::Out;
      dp.params.push_back(std::move(p));
    }
  }
  for (const VarDecl* d : scalarOutDecls) {
    VarDecl p;
    p.name = d->name;
    p.type = d->type;
    p.storage = Storage::Param;
    p.mode = ParamMode::Out;
    if (std::none_of(dp.params.begin(), dp.params.end(),
                     [&](const VarDecl& q) { return q.name == d->name; })) {
      dp.params.push_back(std::move(p));
      out.scalarOutputs.push_back({d->name, d->type.scalar});
    }
  }
  // Exports create out params too.
  for (const Feedback& fb : out.feedbacks) {
    if (fb.exportedTo.empty()) continue;
    if (std::any_of(dp.params.begin(), dp.params.end(),
                    [&](const VarDecl& q) { return q.name == fb.exportedTo; })) {
      continue;
    }
    VarDecl p;
    p.name = fb.exportedTo;
    p.type = Type::scalarOf(fb.type);
    p.storage = Storage::Param;
    p.mode = ParamMode::Out;
    dp.params.push_back(std::move(p));
    out.scalarOutputs.push_back({fb.exportedTo, fb.type});
  }

  // Body: feedback loads, rewritten compute statements, feedback stores,
  // exports.
  auto dpBody = std::make_unique<BlockStmt>();
  auto fbLocalName = [](const std::string& n) { return n + "_fb"; };

  // Scalars declared outside the loop but used as per-iteration temporaries
  // (written before read every iteration, e.g. bit_correlator's counter)
  // need local declarations inside the data-path function.
  {
    const std::set<const VarDecl*> feedbackSetEarly(feedbackDecls.begin(), feedbackDecls.end());
    for (const VarDecl* d : bodyScalars) {
      if (d->type.isArray() || bodyLocals.count(d) || feedbackSetEarly.count(d)) continue;
      if (d->storage == Storage::Param || loopIndexOf(d) >= 0) continue;
      if (!rfa.written(d)) continue; // read-only constants are substituted
      auto decl = std::make_unique<DeclStmt>();
      decl->var.name = d->name;
      decl->var.type = d->type;
      decl->var.storage = Storage::Local;
      decl->loc = d->loc;
      dpBody->stmts.push_back(std::move(decl));
    }
  }

  for (const Feedback& fb : out.feedbacks) {
    auto d = std::make_unique<DeclStmt>();
    d->var.name = fbLocalName(fb.name);
    d->var.type = Type::scalarOf(fb.type);
    d->var.storage = Storage::Local;
    auto lp = std::make_unique<CallExpr>();
    lp->callee = intrinsics::kLoadPrev;
    lp->args.push_back(std::make_unique<VarRefExpr>(fb.name));
    d->init = std::move(lp);
    dpBody->stmts.push_back(std::move(d));
  }

  // Rewrite pass over a clone of the compute body.
  const std::set<const VarDecl*> feedbackSet(feedbackDecls.begin(), feedbackDecls.end());
  std::function<void(ExprPtr&)> rewriteExpr = [&](ExprPtr& e) {
    // Children first.
    switch (e->kind) {
      case ExprKind::ArrayRef: {
        auto& a = static_cast<ArrayRefExpr&>(*e);
        // NOTE: stream accesses are matched on the *original* affine indices;
        // rewriting them first would corrupt the offsets.
        if (a.decl && streamIndex.count(a.decl) && !streamBuilds.at(a.decl).isOutput) {
          // NOTE: indices were already affine; match the offset vector to
          // find the window scalar.
          const Stream& st = out.inputs[static_cast<size_t>(streamIndex.at(a.decl))];
          std::vector<int64_t> off(a.indices.size(), 0);
          for (size_t d2 = 0; d2 < a.indices.size(); ++d2) {
            off[d2] = analyzeAffine(*a.indices[d2]).constant;
          }
          for (size_t i = 0; i < st.offsets.size(); ++i) {
            if (st.offsets[i] == off) {
              auto v = std::make_unique<VarRefExpr>(st.scalarNames[i]);
              v->loc = e->loc;
              e = std::move(v);
              return;
            }
          }
          throw InternalCompilerError(
              fmt("extract-kernel: input access '%0' missing from its stream's offset set", a.name));
        } else if (a.decl && isLookupTable(a.decl)) {
          // Dynamic const-table read -> ROCCC_lookup (ROM instantiation).
          for (auto& i : a.indices) rewriteExpr(i);
          auto lut = std::make_unique<CallExpr>();
          lut->callee = intrinsics::kLookup;
          lut->loc = e->loc;
          lut->args.push_back(std::make_unique<VarRefExpr>(a.name));
          if (a.indices.size() != 1) {
            throw InternalCompilerError(
                fmt("extract-kernel: dynamic lookup table '%0' indexed with %1 subscripts "
                    "(only 1-D tables lower to ROCCC_lookup)",
                    a.name, a.indices.size()));
          }
          lut->args.push_back(std::move(a.indices[0]));
          e = std::move(lut);
        }
        return;
      }
      case ExprKind::VarRef: {
        auto& v = static_cast<VarRefExpr&>(*e);
        if (!v.decl) return;
        if (feedbackSet.count(v.decl)) {
          v.name = fbLocalName(v.name);
          v.decl = nullptr;
          return;
        }
        const int li = loopIndexOf(v.decl);
        if (li >= 0) {
          // Value use of the induction variable: feed it as a scalar input.
          if (!inductionInputs.count(li)) inductionInputs.insert(li);
          v.name = out.loops[static_cast<size_t>(li)].iv + "_val";
          v.decl = nullptr;
        }
        // Constant loop-invariant local/global reads: substitute literal.
        if (v.decl && v.decl->storage != Storage::Param && !bodyLocals.count(v.decl) &&
            !v.decl->type.isArray() && !rfa.written(v.decl)) {
          int64_t init = 0;
          if (auto it = preInit.find(v.decl); it != preInit.end())
            init = it->second;
          else if (!v.decl->init.empty())
            init = v.decl->init[0];
          auto lit = std::make_unique<IntLitExpr>(init);
          lit->loc = e->loc;
          e = std::move(lit);
        }
        return;
      }
      case ExprKind::Unary:
        rewriteExpr(static_cast<UnaryExpr&>(*e).operand);
        return;
      case ExprKind::Binary: {
        auto& b = static_cast<BinaryExpr&>(*e);
        rewriteExpr(b.lhs);
        rewriteExpr(b.rhs);
        return;
      }
      case ExprKind::Cast:
        rewriteExpr(static_cast<CastExpr&>(*e).operand);
        return;
      case ExprKind::Call: {
        auto& c = static_cast<CallExpr&>(*e);
        for (size_t i = (c.callee == intrinsics::kLookup || c.callee == intrinsics::kLoadPrev ||
                         c.callee == intrinsics::kStoreNext)
                            ? 1u
                            : 0u;
             i < c.args.size(); ++i) {
          rewriteExpr(c.args[i]);
        }
        if ((c.callee == intrinsics::kLoadPrev || c.callee == intrinsics::kStoreNext) &&
            !c.args.empty() && c.args[0]->kind == ExprKind::VarRef) {
          // Explicit feedback macros keep targeting the dp-module global.
          static_cast<VarRefExpr&>(*c.args[0]).decl = nullptr;
        }
        return;
      }
      default:
        return;
    }
  };

  std::function<void(Stmt&)> rewriteStmt = [&](Stmt& s) {
    switch (s.kind) {
      case StmtKind::Block:
        for (auto& st : static_cast<BlockStmt&>(s).stmts) rewriteStmt(*st);
        break;
      case StmtKind::Decl: {
        auto& d = static_cast<DeclStmt&>(s);
        if (d.init) rewriteExpr(d.init);
        break;
      }
      case StmtKind::Assign: {
        auto& a = static_cast<AssignStmt&>(s);
        rewriteExpr(a.value);
        if (a.target.kind == LValue::Kind::ArrayElem && a.target.decl &&
            streamIndex.count(a.target.decl)) {
          const Stream& st = out.outputs[static_cast<size_t>(streamIndex.at(a.target.decl))];
          std::vector<int64_t> off(a.target.indices.size(), 0);
          for (size_t d2 = 0; d2 < a.target.indices.size(); ++d2) {
            off[d2] = analyzeAffine(*a.target.indices[d2]).constant;
          }
          for (size_t i = 0; i < st.offsets.size(); ++i) {
            if (st.offsets[i] == off) {
              a.target.kind = LValue::Kind::Deref;
              a.target.name = st.scalarNames[i];
              a.target.decl = nullptr;
              a.target.indices.clear();
              return;
            }
          }
          throw InternalCompilerError(fmt(
              "extract-kernel: output access '%0' missing from its stream's offset set",
              a.target.name));
        } else if (a.target.kind == LValue::Kind::Var && a.target.decl &&
                   feedbackSet.count(a.target.decl)) {
          a.target.name = fbLocalName(a.target.name);
          a.target.decl = nullptr;
        } else if (a.target.kind == LValue::Kind::Deref) {
          a.target.decl = nullptr; // now refers to the dp's own out param
        }
        break;
      }
      case StmtKind::If: {
        auto& i = static_cast<IfStmt&>(s);
        rewriteExpr(i.cond);
        rewriteStmt(*i.thenBody);
        if (i.elseBody) rewriteStmt(*i.elseBody);
        break;
      }
      case StmtKind::CallStmt:
        rewriteExpr(static_cast<CallStmt&>(s).call);
        break;
      default:
        break;
    }
  };

  for (const auto& st : body.stmts) {
    StmtPtr copy = st->clone();
    rewriteStmt(*copy);
    dpBody->stmts.push_back(std::move(copy));
  }

  // Feedback stores and exports.
  for (const Feedback& fb : out.feedbacks) {
    auto call = std::make_unique<CallExpr>();
    call->callee = intrinsics::kStoreNext;
    call->args.push_back(std::make_unique<VarRefExpr>(fb.name));
    call->args.push_back(std::make_unique<VarRefExpr>(fbLocalName(fb.name)));
    auto cs = std::make_unique<CallStmt>();
    cs->call = std::move(call);
    dpBody->stmts.push_back(std::move(cs));
    if (!fb.exportedTo.empty()) {
      auto a = std::make_unique<AssignStmt>();
      a->target.kind = LValue::Kind::Deref;
      a->target.name = fb.exportedTo;
      a->value = std::make_unique<VarRefExpr>(fbLocalName(fb.name));
      dpBody->stmts.push_back(std::move(a));
    }
  }

  // Induction-value inputs discovered by the rewrite.
  for (int li : inductionInputs) {
    VarDecl p;
    p.name = out.loops[static_cast<size_t>(li)].iv + "_val";
    p.type = Type::scalarOf(ScalarType::intTy());
    p.storage = Storage::Param;
    p.mode = ParamMode::In;
    // Insert before output params to keep inputs-then-outputs order.
    auto firstOut = std::find_if(dp.params.begin(), dp.params.end(),
                                 [](const VarDecl& q) { return q.mode == ParamMode::Out; });
    dp.params.insert(firstOut, std::move(p));
    out.scalarInputs.push_back({out.loops[static_cast<size_t>(li)].iv + "_val",
                                ScalarType::intTy(), true, li});
  }

  dp.body = std::move(dpBody);
  out.dpModule.functions.push_back(std::move(dp));

  if (!analyze(out.dpModule, diags)) {
    diags.error(fn.loc, fmt("internal: extracted data-path for '%0' failed analysis", fn.name));
    return false;
  }

  // ---- stage 7: Fig 3(b) text -------------------------------------------------
  {
    IndentWriter w;
    for (size_t li = 0; li < out.loops.size(); ++li) {
      const LoopDim& l = out.loops[li];
      w.line(fmt("for (%0 = %1; %0 < %2; %0 = %0 + %3) {", l.iv, l.begin, l.end, l.step));
      w.indent();
    }
    for (const Stream& st : out.inputs) {
      for (size_t i = 0; i < st.scalarNames.size(); ++i) {
        std::string idx;
        for (size_t d = 0; d < st.dims.size(); ++d) {
          std::string term;
          if (st.dimMap[d].loop >= 0) {
            const std::string& iv = out.loops[static_cast<size_t>(st.dimMap[d].loop)].iv;
            term = st.dimMap[d].coeff == 1 ? iv : fmt("%0*%1", st.dimMap[d].coeff, iv);
          }
          if (st.offsets[i][d] != 0) {
            term += (term.empty() ? fmt("%0", st.offsets[i][d]) : fmt("+%0", st.offsets[i][d]));
          }
          if (term.empty()) term = "0";
          idx += "[" + term + "]";
        }
        w.line(fmt("%0 = %1%2;", st.scalarNames[i], st.arrayName, idx));
      }
    }
    w.line(fmt("/* compute: see %0 */", out.dpName));
    for (size_t li = 0; li < out.loops.size(); ++li) {
      w.dedent();
      w.line("}");
    }
    out.scalarReplacedText = w.str();
  }

  return !failed;
}

} // namespace roccc::hlir
