#include "support/diag.hpp"

#include <ostream>
#include <sstream>

namespace roccc {

std::string SourceLoc::str() const {
  if (!isValid()) return "<unknown>";
  std::ostringstream os;
  os << line << ':' << column;
  return os.str();
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  switch (severity) {
    case Severity::Note: os << "note"; break;
    case Severity::Warning: os << "warning"; break;
    case Severity::Error: os << "error"; break;
  }
  os << " @" << loc.str() << ": " << message;
  return os.str();
}

void DiagEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++errorCount_;
  diags_.push_back({sev, loc, std::move(message)});
}

std::string DiagEngine::dump() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void DiagEngine::print(std::ostream& os) const {
  for (const auto& d : diags_) os << d.str() << '\n';
}

} // namespace roccc
