# Empty compiler generated dependencies file for roccc_support.
# This may be replaced when dependencies are built.
