/* Scale by a runtime scalar, saturate to int12 range: nested conditionals
   in the loop body become a mux tree. */
void clamp_scale(const int10 A[64], int8 gain, int16 C[64]) {
  int i;
  int22 t;
  for (i = 0; i < 64; i++) {
    t = A[i] * gain;
    if (t > 2047) {
      C[i] = 2047;
    } else {
      if (t < -2048) {
        C[i] = -2048;
      } else {
        C[i] = t;
      }
    }
  }
}
