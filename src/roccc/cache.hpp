// roccc::CompileCache — a content-addressed, two-tier compile-result cache
// for the batch driver.
//
// PR 3's determinism guarantee (a compile's output bytes are a pure function
// of source + options; DESIGN.md §8, docs/CONCURRENCY.md) is exactly the
// precondition that makes result caching sound: if two jobs have the same
// cache key, serving the stored artifacts is indistinguishable — byte for
// byte — from re-running the compile. The common batch workloads (regression
// sweeps, unroll-factor scans, fuzz re-runs) repeat identical (source,
// options) pairs constantly; the cache turns them from O(jobs) compiles into
// O(distinct jobs).
//
// Key derivation (docs/CACHING.md has the full walkthrough):
//
//   key = SHA-256( schema version || normalized source bytes ||
//                  canonicalized CompileOptions || fault-injection salt )
//
//   - "normalized source" folds CRLF / lone CR line endings to LF — the one
//     byte-level difference the front end provably cannot observe.
//   - "canonicalized options" serializes every *semantic* field of
//     CompileOptions in a fixed order. Presentation-only fields (the
//     --print-after / --print-after-all snapshot requests, and roccc-cc's
//     --quiet, which never reaches CompileOptions) are deliberately
//     excluded so they cannot fragment cache keys.
//   - the schema version covers the compiler itself: bump kCacheSchema when
//     code generation changes, and every old entry silently misses.
//   - CompileOptions::injectFaultAt participates as a salt, so a
//     fault-armed compile can never be served a clean compile's result (or
//     vice versa).
//
// Tier 1 is an in-process sharded-mutex LRU with a byte budget; entries are
// whole CompileResult artifact sets (VHDL/Verilog bytes, pass log,
// diagnostics, outcome). Tier 2 is an optional on-disk store (roccc-cc
// --cache-dir) that survives across processes and CI runs; writes go to a
// temp file then rename into place (atomic on POSIX), and both the store
// manifest and each entry carry the schema version — corruption or a
// version mismatch reads as a silent miss, never an error.
//
// getOrCompute() is single-flight per key: when N in-flight jobs share a
// key, one caller (the leader) runs the compile while the other N-1 block
// on its shared future, so identical in-flight jobs cost one compile.
//
// Negative caching: deterministic failures (FrontendError — the input is at
// fault — and real internal errors) are cached like successes. Timeout and
// ResourceExceeded are never cached (wall-clock and memory outcomes are not
// pure functions of the key), and neither are fault-injected internal
// errors.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "roccc/compiler.hpp"

namespace roccc {

/// Cache schema version. Participates in every key and in the on-disk
/// manifest/entry headers; bump it whenever code generation or the entry
/// serialization changes so stale entries miss instead of lying.
extern const char* const kCacheSchema;

/// Canonical fixed-order serialization of every semantic CompileOptions
/// field. Presentation-only fields (pipeline print/snapshot requests) are
/// excluded by design — see the key-invariance test in tests/cache_test.cpp.
std::string canonicalizeOptions(const CompileOptions& options);

/// Line-ending normalization applied to source bytes before hashing
/// (CRLF and lone CR fold to LF; the front end cannot observe the
/// difference, so the fold widens hits without widening behaviour).
std::string normalizeSourceForKey(std::string_view source);

/// The content-addressed key for one (source, options) compile.
std::string computeCacheKey(std::string_view source, const CompileOptions& options);

/// The artifact set a cache entry stores — everything in a CompileResult
/// that outlives the compile (the heavyweight in-memory IRs — AST, MIR,
/// data path, RTL netlist — are deliberately not captured; a hit
/// materializes a CompileResult whose IR fields are empty).
struct CacheEntry {
  CompileOutcome outcome = CompileOutcome::Ok;
  std::string failedPass;
  std::string vhdl;
  std::string verilog;
  std::string transformedSource;
  std::vector<Diagnostic> diags;
  std::vector<PassStatistics> passLog; ///< snapshots stripped

  /// Bytes this entry charges against the tier-1 budget.
  int64_t byteSize() const;

  /// Capture from / materialize into a CompileResult (byte-identical
  /// artifact fields; wall-time fields ride along, exempt as always).
  static CacheEntry fromResult(const CompileResult& result);
  CompileResult toResult() const;
};

/// Whether a finished compile may be stored: Ok and deterministic failures
/// cache; Timeout / ResourceExceeded / fault-injected runs never do.
bool isCacheable(const CompileResult& result, const CompileOptions& options);

/// Monotonic counters, readable at any time (CompileCache::stats()).
struct CacheStats {
  int64_t hits = 0;         ///< tier-1 lookups served from memory
  int64_t misses = 0;       ///< lookups that ran the compile
  int64_t coalesced = 0;    ///< single-flight waiters served by a leader
  int64_t evictions = 0;    ///< tier-1 entries evicted by the byte budget
  int64_t uncacheable = 0;  ///< computed results not stored (policy)
  int64_t diskHits = 0;     ///< tier-2 loads (also counted in `misses`' stead)
  int64_t diskStores = 0;   ///< tier-2 entry files written
  int64_t bytesInUse = 0;   ///< current tier-1 resident bytes
  int64_t entries = 0;      ///< current tier-1 entry count

  /// {"hits":..,"misses":..,...} — embedded in roccc-cc --stats-json.
  std::string toJson() const;
};

struct CacheConfig {
  /// Tier-1 byte budget; least-recently-used entries evict past it.
  int64_t maxBytes = 256ll * 1024 * 1024;
  /// Tier-2 directory; empty disables the disk store.
  std::string diskDir;
  /// Mutex shards for tier 1 (power of two).
  int shards = 16;
};

class CompileCache {
 public:
  explicit CompileCache(CacheConfig config = {});
  ~CompileCache();
  CompileCache(const CompileCache&) = delete;
  CompileCache& operator=(const CompileCache&) = delete;

  /// The single entry point the batch driver uses. Looks `key` up in tier 1
  /// then tier 2; on a miss, exactly one caller per key runs `compute`
  /// (single-flight) while concurrent callers of the same key wait for its
  /// result. `options` only informs the store policy (isCacheable).
  /// `wasHit`, when non-null, reports whether the result came from the
  /// cache (hit or coalesced wait) rather than from this call's compute.
  CompileResult getOrCompute(const std::string& key, const CompileOptions& options,
                             const std::function<CompileResult()>& compute,
                             bool* wasHit = nullptr);

  /// Direct probe (tier 1 then tier 2), no compute, no single-flight.
  std::shared_ptr<const CacheEntry> lookup(const std::string& key);
  /// Unconditional insert (tests and tools; getOrCompute is the driver path).
  void insert(const std::string& key, CacheEntry entry);

  CacheStats stats() const;
  const CacheConfig& config() const { return config_; }
  /// True when the tier-2 store is configured and passed its version check.
  bool diskEnabled() const;

 private:
  struct Shard;
  struct InFlight;
  struct DiskStore;

  Shard& shardFor(const std::string& key);
  void insertLocked(Shard& shard, const std::string& key, std::shared_ptr<const CacheEntry> entry);

  CacheConfig config_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<DiskStore> disk_;

  mutable std::mutex statsMutex_;
  CacheStats stats_;
};

} // namespace roccc
