// PassManager — the declared compile pipeline (paper Fig 1: SUIF loop
// transforms -> Machine-SUIF/MIR passes -> data-path -> VHDL).
//
// Compiler::compileSource no longer hard-codes the stage sequence: every
// stage is a named Pass registered with a PassManager, which times each
// one, collects a typed PassStatistics record (the machine-readable
// replacement for the old free-text passLog), can dump the layer's IR
// after any pass (--print-after / --print-after-all), and can run the
// layer-appropriate verifier between passes (--verify-each; RTL and
// SSA-MIR construction verify unconditionally).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "frontend/ast.hpp"
#include "support/budget.hpp"
#include "support/diag.hpp"

namespace roccc {

struct CompileOptions;
struct CompileResult;

/// Which layer of the flow a pass operates on; selects the snapshot
/// printer and the between-pass verifier.
enum class PassLayer { Frontend, Hlir, Mir, Dp, Rtl, Vhdl };
const char* passLayerName(PassLayer layer);

/// One record per registered pass, produced by every PassManager::run.
struct PassStatistics {
  std::string name;
  PassLayer layer = PassLayer::Frontend;
  double wallMs = 0;
  /// False when the pass was registered but skipped (disabled by options).
  bool ran = false;
  /// Named change counters ("inlined", "folded", "narrowed-bits", ...),
  /// in insertion order.
  std::vector<std::pair<std::string, int64_t>> counters;
  /// IR dump taken after the pass when print-after requested it.
  std::string snapshot;

  void add(std::string key, int64_t value) { counters.emplace_back(std::move(key), value); }
  /// Counter by name; 0 when the pass never reported it.
  int64_t counter(const std::string& key) const;
};

/// The --stats-json payload: {"passes":[{name,layer,wallMs,ran,counters},...],
/// "totalMs":...}.
std::string statsToJson(const std::vector<PassStatistics>& stats);

/// As above, with one extra pre-rendered top-level member spliced in before
/// "totalMs" (e.g. `"timing": {...}` — roccc-cc's --stats-json timing
/// block). `extraMember` must be a complete `"key": value` fragment, or
/// empty for none.
std::string statsToJson(const std::vector<PassStatistics>& stats, const std::string& extraMember);
/// The --time-passes table (one row per pass, slowest-aware column widths).
std::string statsToTable(const std::vector<PassStatistics>& stats);

/// Mutable state threaded through the pipeline. Owns the AST module and the
/// kernel *name*; the kernel pointer is re-resolved at every use so no pass
/// can observe a pointer invalidated by an earlier transform (the historic
/// stale-kernel-pointer hazard of the monolithic driver).
struct PassContext {
  const CompileOptions& options;
  CompileResult& result;
  std::string source;     ///< C source text being compiled
  ast::Module module;     ///< AST under transformation (filled by 'parse')
  std::string kernelName; ///< resolved by 'parse'; owned here, not a pointer
  bool mirInSSA = false;  ///< selects mir::verify vs verifySSA
  /// The job's resource budget; checkpointed at every pass boundary. Null
  /// when the caller runs the pipeline without governance.
  CompileBudget* budget = nullptr;

  PassContext(const CompileOptions& opts, CompileResult& res) : options(opts), result(res) {}

  /// Total live IR size across every layer (AST statements + expressions,
  /// MIR instructions, data-path ops/values, RTL cells + nets) — what the
  /// maxIrNodes budget meters at pass boundaries.
  int64_t irNodeCount() const;

  /// Fresh lookup of the kernel function — never hold the returned pointer
  /// across a pass boundary.
  ast::Function* kernel() { return module.findFunction(kernelName); }
  DiagEngine& diags();
};

struct Pass {
  std::string name;
  PassLayer layer = PassLayer::Frontend;
  /// Pass body. Returns false to stop the pipeline; the diagnostics engine
  /// carries the explanation.
  std::function<bool(PassContext&, PassStatistics&)> run;
  /// False: record the pass as skipped without running it (option gates).
  bool enabled = true;
  /// Verify this pass's layer even without verifyEach (invariants the next
  /// stage depends on: SSA validity, RTL structural soundness).
  bool alwaysVerify = false;
};

struct PipelineOptions {
  /// Run the layer-appropriate verifier after every pass that ran
  /// (mir::verify/verifySSA, rtl::Module::verify, vhdl::check).
  bool verifyEach = false;
  /// Capture an IR snapshot after every pass / the named passes into
  /// PassStatistics::snapshot.
  bool printAfterAll = false;
  std::vector<std::string> printAfter;
};

class PassManager {
 public:
  explicit PassManager(PipelineOptions options = {}) : options_(std::move(options)) {}

  void addPass(Pass p) { passes_.push_back(std::move(p)); }
  const std::vector<Pass>& passes() const { return passes_; }
  std::vector<std::string> passNames() const;

  /// Runs every enabled pass in registration order. Appends one record per
  /// registered pass (including skipped ones) to `stats`. Returns false on
  /// the first pass failure or verifier failure.
  bool run(PassContext& ctx, std::vector<PassStatistics>& stats) const;

 private:
  bool verifyAfter(const Pass& p, PassContext& ctx) const;
  std::string snapshotOf(const Pass& p, PassContext& ctx) const;
  bool wantsSnapshot(const std::string& passName) const;

  PipelineOptions options_;
  std::vector<Pass> passes_;
};

} // namespace roccc
