file(REMOVE_RECURSE
  "libroccc_rtl.a"
)
