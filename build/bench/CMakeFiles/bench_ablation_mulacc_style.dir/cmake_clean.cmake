file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mulacc_style.dir/bench_ablation_mulacc_style.cpp.o"
  "CMakeFiles/bench_ablation_mulacc_style.dir/bench_ablation_mulacc_style.cpp.o.d"
  "bench_ablation_mulacc_style"
  "bench_ablation_mulacc_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mulacc_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
