// Kernel extraction: turns a streaming loop nest into
//   (1) the data-path function fed to the back end (paper Fig 3 (c) /
//       Fig 4 (c)), with feedback variables annotated through
//       ROCCC_load_prev / ROCCC_store2next,
//   (2) the memory access pattern (window shape, stride, offsets) that
//       drives smart-buffer and address-generator generation (section 4.1),
//   (3) the loop structure the controller implements.
//
// This is the compiler's "scalar replacement" + front-end dataflow analysis
// stage (sections 4.1, 4.2.1).
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace roccc::hlir {

/// One counted loop of the nest, outermost first.
struct LoopDim {
  std::string iv;
  int64_t begin = 0;
  int64_t end = 0; ///< exclusive
  int64_t step = 1;

  int64_t trips() const { return (end - begin + step - 1) / step; }
};

/// How one array dimension's index depends on the loop nest:
/// index = coeff * loops[loop].iv + (per-access offset); loop == -1 means
/// the dimension's base is constant 0 (offset carries the whole index).
struct DimMap {
  int loop = -1;
  int64_t coeff = 0;
};

/// A streaming array access pattern: the window of elements touched per
/// iteration and how its base address advances.
struct Stream {
  std::string arrayName;
  ScalarType elemType;
  std::vector<int64_t> dims;                ///< array dimensions
  std::vector<DimMap> dimMap;               ///< per array dimension
  std::vector<std::vector<int64_t>> offsets; ///< per access, per array dimension
  std::vector<std::string> scalarNames;     ///< data-path scalar name per access

  int accessCount() const { return static_cast<int>(offsets.size()); }
  /// Window extent along array dimension d (max offset - min offset + 1).
  int64_t extent(size_t d) const;
  int64_t minOffset(size_t d) const;
  /// Elements the window base advances per innermost-loop iteration along
  /// dimension d (coeff * loop step), 0 if the dimension is not driven by
  /// the innermost loop.
  int64_t strideForLoop(size_t d, const std::vector<LoopDim>& loops, int loop) const;
  /// Row-major flat address of access `a` at the given iteration point.
  int64_t flatAddress(size_t a, const std::vector<int64_t>& ivs) const;
};

/// A scalar carried across iterations (paper Fig 4): hardware keeps it in a
/// feedback register written by SNX and read by LPR.
struct Feedback {
  std::string name;      ///< variable name in the data-path module
  ScalarType type;
  int64_t initial = 0;   ///< register reset value
  std::string exportedTo; ///< out-param receiving the final value ("" if none)
};

/// A loop-invariant scalar input to the data path (kernel scalar parameter),
/// or the live induction-variable value when the body uses it numerically.
struct ScalarInput {
  std::string name;
  ScalarType type;
  bool isInduction = false;
  int loop = -1; ///< which loop's iv when isInduction
};

/// A scalar out-parameter written by the data path each iteration; the
/// run-time value after the last iteration is the kernel result.
struct ScalarOutput {
  std::string name;
  ScalarType type;
};

/// Everything later stages need, produced by extractKernel().
struct KernelInfo {
  std::string kernelName;
  std::string dpName; ///< data-path function, "<kernel>_dp"
  /// Self-contained module holding the data-path function, feedback
  /// globals, and any const lookup tables it references.
  ast::Module dpModule;
  std::vector<LoopDim> loops; ///< outermost first
  std::vector<Stream> inputs;
  std::vector<Stream> outputs;
  std::vector<Feedback> feedbacks;
  std::vector<ScalarInput> scalarInputs;
  std::vector<ScalarOutput> scalarOutputs;
  /// The kernel after scalar replacement, in the paper's Fig 3 (b) form
  /// (for documentation/benches; semantically equal to the original).
  std::string scalarReplacedText;

  int64_t totalIterations() const {
    int64_t n = 1;
    for (const auto& l : loops) n *= l.trips();
    return n;
  }
  const ast::Function& dpFunction() const { return *dpModule.findFunction(dpName); }
};

/// Extracts the kernel `fnName` from `m`. `m` must have passed analyze().
/// On failure returns false and reports diagnostics; `out` is unspecified.
bool extractKernel(const ast::Module& m, const std::string& fnName, KernelInfo& out, DiagEngine& diags);

/// Result of linear (affine) index analysis: expr == sum(coeff[v]*v) + c.
struct AffineForm {
  std::vector<std::pair<const ast::VarDecl*, int64_t>> terms;
  int64_t constant = 0;
  bool valid = false;
};
/// Decomposes an index expression into an affine form over variables; used
/// by extraction and unit-tested directly.
AffineForm analyzeAffine(const ast::Expr& e);

} // namespace roccc::hlir
