// Minimal strict JSON: the value model, parser, and compact serializer
// behind the roccc-ccd wire protocol (src/roccc/service_net.hpp).
//
// The daemon speaks line-delimited JSON, so the serializer never emits a
// raw newline (all control characters are escaped) and the parser is
// strict RFC 8259: no trailing commas, no comments, no unquoted keys, and
// a recursion-depth cap so a hostile frame cannot overflow the stack.
// Object member order is preserved (insertion order), which keeps every
// serialized response byte-deterministic — the same property the
// roccc-sweep-v1 / --stats-json reports rely on.
//
// Numbers are stored as double plus the original integer when the literal
// was integral and fits int64 — protocol counters round-trip exactly, and
// serialization prints integers without an exponent or trailing ".0".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roccc::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  static Value null() { return Value(); }
  static Value boolean(bool b);
  static Value number(double d);
  static Value number(int64_t i);
  static Value string(std::string s);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  bool asBool() const { return bool_; }
  double asDouble() const { return number_; }
  /// The integral value; truncates when the literal was fractional.
  int64_t asInt() const { return isInt_ ? int_ : static_cast<int64_t>(number_); }
  /// True when the value is integral and within int64 — such numbers
  /// serialize without a decimal point or exponent (so `1e2` reads back
  /// as the integer 100).
  bool isIntegral() const { return isInt_; }
  const std::string& asString() const { return string_; }

  /// Array elements / object members (members keep insertion order).
  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const { return members_; }

  /// Object lookup; nullptr when absent (or when this is not an object).
  const Value* find(std::string_view key) const;

  /// Array append.
  void push(Value v);
  /// Object append-or-overwrite (linear scan; protocol objects are small).
  void set(std::string_view key, Value v);

  /// Compact single-line serialization (no raw newlines anywhere).
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  int64_t int_ = 0;
  bool isInt_ = false;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Strict parse of a complete JSON document. Returns false and fills
/// `error` (with a byte offset) on any violation: trailing bytes, bad
/// escapes, truncation, or nesting beyond `maxDepth`.
bool parse(std::string_view text, Value& out, std::string& error, int maxDepth = 64);

/// JSON string-literal escaping of `s` (quotes not included). All control
/// characters become \uXXXX (or the short escapes), so the output never
/// contains a raw newline.
std::string escape(std::string_view s);

} // namespace roccc::json
