// The complete execution model of paper Fig 2: input BRAMs -> smart
// buffers -> fully pipelined data path -> output collector -> output BRAMs,
// sequenced by the controller. Simulation is cycle-accurate: throughput and
// memory-traffic numbers reported by the benches come from here.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dp/datapath.hpp"
#include "hlir/kernel.hpp"
#include "interp/interp.hpp"
#include "rtl/buffers.hpp"
#include "rtl/fastsim.hpp"
#include "rtl/netlist.hpp"
#include "support/diag.hpp"

namespace roccc::rtl {

struct SystemOptions {
  int inputBusElems = 1;   ///< elements each smart buffer fetches per clock
  int outputBusElems = 0;  ///< 0: wide enough for one window per clock
  bool useSmartBuffer = true; ///< false: naive re-fetching buffer (ablation)
  /// Which netlist engine clocks the data path. Fast is the compiled
  /// slot-indexed engine (rtl/fastsim.hpp); Reference is the boxed-Value
  /// oracle it is differentially tested against.
  SimEngine engine = SimEngine::Fast;
  int64_t cycleLimit = 50'000'000;
  /// Record a VCD waveform of the data-path module during the run
  /// (retrieve with System::vcd()).
  bool recordVcd = false;
};

struct SystemStats {
  int64_t cycles = 0;
  int64_t enabledCycles = 0;  ///< cycles with the pipeline advancing
  int64_t stallCycles = 0;
  int64_t iterations = 0;
  int64_t bramReads = 0;      ///< off-buffer (BRAM-side) element reads
  int64_t bramWrites = 0;
  int64_t bufferCapacityElems = 0; ///< total smart-buffer storage
  int pipelineStages = 1;
  /// Output elements produced per clock once the pipeline is full
  /// (the Table 1 DCT discussion: ROCCC emits 8/clock vs the IP's 1/clock).
  double steadyStateThroughput() const;
  int64_t outputElems = 0;
};

/// Runs a compiled kernel in the Fig 2 system and returns outputs in the
/// same shape interp::runKernel produces. Throws std::runtime_error on
/// simulation-level failures (cycle limit, unbound arrays).
class System {
 public:
  System(const hlir::KernelInfo& kernel, const dp::DataPath& dp, const Module& module,
         SystemOptions options = {});

  interp::KernelIO run(const interp::KernelIO& inputs);
  const SystemStats& stats() const { return stats_; }
  /// VCD text of the last run (empty unless options.recordVcd was set).
  const std::string& vcd() const { return vcd_; }

 private:
  const hlir::KernelInfo& kernel_;
  const dp::DataPath& dp_;
  const Module& module_;
  SystemOptions opt_;
  SystemStats stats_;
  std::string vcd_;
};

} // namespace roccc::rtl
