/* Median of a 3-wide window via a full nested-conditional decision tree. */
void median3(const int12 A[66], int12 M[64]) {
  int i;
  int12 x;
  int12 y;
  int12 z;
  int12 m;
  for (i = 0; i < 64; i++) {
    x = A[i];
    y = A[i+1];
    z = A[i+2];
    if (x > y) {
      if (y > z) {
        m = y;
      } else {
        if (x > z) {
          m = z;
        } else {
          m = x;
        }
      }
    } else {
      if (x > z) {
        m = x;
      } else {
        if (y > z) {
          m = z;
        } else {
          m = y;
        }
      }
    }
    M[i] = m;
  }
}
