#!/bin/sh
# Checks that a CLI reference doc documents exactly the options the paired
# binary's --help reports — both directions: an undocumented flag fails,
# and so does a documented flag the binary no longer accepts.
#
#   check_cli_docs.sh <path-to-binary> <path-to-reference.md> [scope]
#
# With no scope, the whole doc is scanned. With a scope, only the region
# between `<!-- cli:scope -->` and `<!-- /cli:scope -->` markers counts —
# that is how several tools share one docs/CLI.md without their flag sets
# bleeding into each other's checks.
#
# Registered as the `cli_docs_in_sync` (roccc-cc), `ccd_cli_docs_in_sync`
# (roccc-ccd), `client_cli_docs_in_sync` (roccc-client) — all scoped
# regions of docs/CLI.md — and `explore_cli_docs_in_sync` (roccc-explore /
# docs/EXPLORE.md, unscoped) ctests (tests/CMakeLists.txt), and run by the
# docs CI job.
set -eu

RCC="$1"
DOC="$2"
SCOPE="${3:-}"

[ -x "$RCC" ] || { echo "error: '$RCC' is not executable" >&2; exit 1; }
[ -f "$DOC" ] || { echo "error: '$DOC' not found" >&2; exit 1; }

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Flags as --help lists them: the option table prints one per line, indented
# two spaces.
"$RCC" --help \
  | sed -n 's/^  \(--\{0,1\}[a-z][a-z0-9-]*\).*/\1/p' \
  | sort -u > "$tmpdir/help_flags"

# The doc text to scan: the whole file, or just the scoped marker region.
if [ -n "$SCOPE" ]; then
  sed -n "/<!-- cli:$SCOPE -->/,/<!-- \\/cli:$SCOPE -->/p" "$DOC" > "$tmpdir/doc_text"
  [ -s "$tmpdir/doc_text" ] || {
    echo "error: no <!-- cli:$SCOPE --> region in $DOC" >&2; exit 1;
  }
else
  cp "$DOC" "$tmpdir/doc_text"
fi

# Flags as documented: every `--flag` (or `-o`) that starts a backticked
# span in the reference table/headings.
grep -oE '`--?[a-z][a-z0-9-]*' "$tmpdir/doc_text" \
  | sed 's/^`//' \
  | sort -u > "$tmpdir/doc_flags"

if ! diff -u "$tmpdir/help_flags" "$tmpdir/doc_flags" > "$tmpdir/diff"; then
  echo "$DOC${SCOPE:+ (scope $SCOPE)} is out of sync with $(basename "$RCC") --help:" >&2
  echo "(lines prefixed '-' are in --help but undocumented;" >&2
  echo " lines prefixed '+' are documented but not in --help)" >&2
  cat "$tmpdir/diff" >&2
  exit 1
fi

echo "$DOC${SCOPE:+ (scope $SCOPE)} and $(basename "$RCC") --help agree ($(wc -l < "$tmpdir/help_flags") flags)"
