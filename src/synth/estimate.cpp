#include "synth/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "support/strings.hpp"

namespace roccc::synth {

Resources& Resources::operator+=(const Resources& o) {
  lut4 += o.lut4;
  ff += o.ff;
  mult18 += o.mult18;
  bram += o.bram;
  srl16 += o.srl16;
  return *this;
}

int64_t slicesFor(const Resources& r) {
  // A Virtex-II slice holds 2 LUT4s and 2 FFs (an SRL16 occupies a LUT
  // position). Real packing shares slices between logic and registers
  // imperfectly; the fill factor matches typical map reports for
  // small/medium designs.
  const int64_t lutSlices = (r.lut4 + r.srl16 + 1) / 2;
  const int64_t ffSlices = (r.ff + 1) / 2;
  const double packed = std::max(lutSlices, ffSlices) +
                        0.35 * static_cast<double>(std::min(lutSlices, ffSlices));
  return static_cast<int64_t>(std::ceil(packed));
}

namespace {

struct CellCost {
  Resources res;
  double delayNs = 0;
};

int widthOf(const rtl::Module& m, int net) { return m.nets[static_cast<size_t>(net)].type.width; }

bool drivenByConst(const rtl::Module& m, int net) {
  const int d = m.nets[static_cast<size_t>(net)].driver;
  return d >= 0 && m.cells[static_cast<size_t>(d)].kind == rtl::CellKind::Const;
}

CellCost cost(const rtl::Module& m, const rtl::Cell& c, const EstimateOptions& opt) {
  CellCost k;
  const int w = c.output >= 0 ? widthOf(m, c.output) : 1;
  switch (c.kind) {
    case rtl::CellKind::Const:
    case rtl::CellKind::Slice:
    case rtl::CellKind::Concat:
    case rtl::CellKind::Resize:
      return k; // wiring only
    case rtl::CellKind::Add:
    case rtl::CellKind::Sub:
    case rtl::CellKind::Neg:
      k.res.lut4 = w;
      k.delayNs = 0.62 + 0.042 * w; // LUT + MUXCY/XORCY chain
      return k;
    case rtl::CellKind::Mul: {
      const int wa = widthOf(m, c.inputs[0]);
      const int wb = widthOf(m, c.inputs[1]);
      if (opt.useMult18) {
        k.res.mult18 = std::max<int64_t>(1, ((wa + 16) / 17) * static_cast<int64_t>((wb + 16) / 17));
        k.delayNs = k.res.mult18 == 1 ? 4.9 : 8.5;
      } else {
        k.res.lut4 = static_cast<int64_t>(0.55 * wa * wb);
        k.delayNs = 2.8 + 0.11 * std::max(wa, wb);
      }
      return k;
    }
    case rtl::CellKind::Div:
    case rtl::CellKind::Rem: {
      // Un-expanded combinational array divider (only reachable with
      // expandDividers=false): priced as W rows of subtract+mux.
      k.res.lut4 = static_cast<int64_t>(w) * (w + 2);
      k.delayNs = w * (0.62 + 0.042 * w);
      return k;
    }
    case rtl::CellKind::And:
    case rtl::CellKind::Or:
    case rtl::CellKind::Xor:
    case rtl::CellKind::Not:
      k.res.lut4 = (w + 1) / 2; // two bits of 2-input logic per LUT4
      k.delayNs = 0.44;
      return k;
    case rtl::CellKind::Shl:
    case rtl::CellKind::Shr: {
      if (drivenByConst(m, c.inputs[1])) return k; // constant shift = wiring
      const int levels = static_cast<int>(std::ceil(std::log2(std::max(2, w))));
      k.res.lut4 = static_cast<int64_t>(w) * levels / 2;
      k.delayNs = 0.44 * levels + 0.3;
      return k;
    }
    case rtl::CellKind::Eq:
    case rtl::CellKind::Ne:
    case rtl::CellKind::Lt:
    case rtl::CellKind::Le:
    case rtl::CellKind::Gt:
    case rtl::CellKind::Ge: {
      const int cw = std::max(widthOf(m, c.inputs[0]), widthOf(m, c.inputs[1]));
      k.res.lut4 = (cw + 1) / 2 + 1;
      k.delayNs = 0.55 + 0.035 * cw;
      return k;
    }
    case rtl::CellKind::Mux:
      k.res.lut4 = w; // 2:1 mux per bit (LUT3)
      k.delayNs = 0.5;
      return k;
    case rtl::CellKind::Reg:
      k.res.ff = w;
      k.delayNs = 0; // clock-to-out folded into clockingOverheadNs
      return k;
    case rtl::CellKind::Rom: {
      const int64_t bits = static_cast<int64_t>(c.romData.size()) * w;
      if (bits > opt.romBramThresholdBits) {
        k.res.bram = (bits + 18 * 1024 - 1) / (18 * 1024);
        k.delayNs = 2.9; // BRAM access
      } else {
        // Distributed ROM: each LUT4 stores 16x1.
        const int64_t depth16 = std::max<int64_t>(1, (static_cast<int64_t>(c.romData.size()) + 15) / 16);
        k.res.lut4 = depth16 * w;
        const int muxLevels = static_cast<int>(std::ceil(std::log2(static_cast<double>(depth16))));
        k.delayNs = 0.44 + 0.4 * std::max(0, muxLevels);
      }
      return k;
    }
  }
  return k;
}

} // namespace

Report estimate(const rtl::Module& m, const EstimateOptions& opt) {
  Report rep;

  // SRL16 inference: register chains (reg -> reg, fanout 1, no enable)
  // of depth >= 3 become shift-register LUTs: width * ceil((k-1)/16)
  // SRL16s plus one output register stage.
  std::vector<char> regAsSrl(m.cells.size(), 0);
  if (opt.inferSrl16) {
    std::vector<int> fanout(m.nets.size(), 0);
    for (const auto& c : m.cells) {
      for (int in : c.inputs) ++fanout[static_cast<size_t>(in)];
    }
    for (int p : m.outputPorts) ++fanout[static_cast<size_t>(p)];
    auto isChainReg = [&](const rtl::Cell& c) {
      return c.kind == rtl::CellKind::Reg && c.inputs.size() == 1;
    };
    // Walk chains from their heads (a chain reg whose input is NOT a
    // single-fanout chain reg).
    for (const auto& c : m.cells) {
      if (!isChainReg(c)) continue;
      const int drv = m.nets[static_cast<size_t>(c.inputs[0])].driver;
      const bool headOfChain =
          drv < 0 || !isChainReg(m.cells[static_cast<size_t>(drv)]) ||
          fanout[static_cast<size_t>(c.inputs[0])] > 1;
      if (!headOfChain) continue;
      // Extend forward while the output feeds exactly one chain reg.
      std::vector<int> chain = {c.id};
      int cur = c.id;
      for (;;) {
        const int out = m.cells[static_cast<size_t>(cur)].output;
        if (fanout[static_cast<size_t>(out)] != 1) break;
        int nextReg = -1;
        for (const auto& cc : m.cells) {
          if (isChainReg(cc) && !cc.inputs.empty() && cc.inputs[0] == out) nextReg = cc.id;
        }
        if (nextReg < 0) break;
        chain.push_back(nextReg);
        cur = nextReg;
      }
      if (chain.size() >= 3) {
        const int w = m.nets[static_cast<size_t>(c.output)].type.width;
        // All but the final stage collapse into SRL16s.
        const int64_t depth = static_cast<int64_t>(chain.size()) - 1;
        rep.res.srl16 += w * ((depth + 15) / 16);
        rep.res.ff += w; // the chain's output register
        for (size_t i = 0; i < chain.size(); ++i) regAsSrl[static_cast<size_t>(chain[i])] = 1;
      }
    }
  }

  std::vector<double> cellDelay(m.cells.size(), 0);
  for (const auto& c : m.cells) {
    if (regAsSrl[static_cast<size_t>(c.id)]) continue; // priced as SRL16 above
    const CellCost k = cost(m, c, opt);
    rep.res += k.res;
    cellDelay[static_cast<size_t>(c.id)] = k.delayNs;
  }
  rep.slices = slicesFor(rep.res);

  // Longest combinational path: DFS with memoization over the cell DAG
  // (registers and inputs are path sources). arrival(cell) = max over
  // combinational fan-in of arrival + routing, + own delay.
  std::vector<double> arrival(m.cells.size(), -1.0);
  std::function<double(int)> arrivalOf = [&](int cid) -> double {
    double& a = arrival[static_cast<size_t>(cid)];
    if (a >= 0) return a;
    const rtl::Cell& c = m.cells[static_cast<size_t>(cid)];
    a = 0; // break cycles defensively (registers are never recursed into)
    double in = 0;
    for (int net : c.inputs) {
      const int drv = m.nets[static_cast<size_t>(net)].driver;
      if (drv < 0) continue; // module input
      const rtl::Cell& dc = m.cells[static_cast<size_t>(drv)];
      if (dc.kind == rtl::CellKind::Reg || dc.kind == rtl::CellKind::Const) continue;
      in = std::max(in, arrivalOf(drv) + opt.routingPerHopNs);
    }
    a = in + cellDelay[static_cast<size_t>(cid)];
    return a;
  };

  double worst = 0;
  std::string worstName = "(none)";
  for (const auto& c : m.cells) {
    const double a = arrivalOf(c.id);
    if (a > worst) {
      worst = a;
      worstName = c.output >= 0 ? m.nets[static_cast<size_t>(c.output)].name : cellKindName(c.kind);
    }
  }
  rep.criticalPathNs = std::max(0.8, worst) + opt.clockingOverheadNs;
  rep.criticalThrough = worstName;
  return rep;
}

Resources memorySubsystemResources(int64_t bufferBits, int addressGenerators, int streams) {
  Resources r;
  // Smart-buffer storage in SRL16s/FFs: model as FF-based line storage with
  // one LUT per 8 bits of shifting/muxing plus the controller FSMs
  // ("pre-existing parameterized FSMs in a VHDL library").
  r.ff = bufferBits;
  r.lut4 = bufferBits / 4;
  r.lut4 += int64_t{28} * addressGenerators; // counters + comparators
  r.ff += int64_t{20} * addressGenerators;
  r.lut4 += int64_t{36} * streams; // per-stream handshake/valid logic
  r.ff += int64_t{12} * streams;
  r.lut4 += 40; // higher-level controller
  r.ff += 16;
  return r;
}

double estimatePowerMw(const Resources& r, double clockMHz, double activity) {
  // Virtex-II 1.5 V core, ~90 nm-era switched capacitance per resource:
  // LUT ~4 pF effective (logic + local routing), FF ~2 pF, MULT18X18 block
  // ~60 pF, BRAM ~90 pF per access. P = C * V^2 * f * activity.
  const double vdd = 1.5;
  const double capPf = 4.0 * static_cast<double>(r.lut4) + 2.0 * static_cast<double>(r.ff) +
                       60.0 * static_cast<double>(r.mult18) + 90.0 * static_cast<double>(r.bram);
  // pF * V^2 * MHz = microwatts; convert to milliwatts.
  return capPf * vdd * vdd * clockMHz * activity / 1000.0;
}

std::string Report::summary() const {
  std::ostringstream os;
  os << "slices=" << slices << " (lut4=" << res.lut4 << ", ff=" << res.ff
     << ", srl16=" << res.srl16 << ", mult18=" << res.mult18 << ", bram=" << res.bram
     << "), fmax=" << fmaxMHz()
     << " MHz (critical " << criticalPathNs << " ns through " << criticalThrough << ")";
  return os.str();
}

} // namespace roccc::synth
