// Reproduces Figure 2, the execution model: off-chip memory -> BRAM ->
// smart buffer -> fully pipelined data path -> BRAM. Runs the 5-tap FIR
// through the cycle-accurate system and reports the fill / steady-state /
// drain phases, memory traffic, and throughput.
#include <cstdio>

#include "kernels.hpp"
#include "roccc/compiler.hpp"

int main() {
  using namespace roccc;
  Compiler c;
  const CompileResult r = c.compileSource(bench::kFir);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }

  interp::KernelIO in;
  for (int i = 0; i < 68; ++i) in.arrays["A"].push_back((i * 73) % 251 - 125);

  rtl::System sys(r.kernel, r.datapath, r.module);
  const auto out = sys.run(in);
  const auto& st = sys.stats();

  std::printf("Figure 2 execution model: 5-tap FIR, 64 iterations\n\n");
  std::printf("  BRAM -> smart buffer -> %d-stage pipelined data path -> BRAM\n\n",
              st.pipelineStages);
  std::printf("  window size            : %d elements (reuse 4/5 per slide)\n",
              r.kernel.inputs[0].accessCount());
  std::printf("  smart buffer capacity  : %lld elements\n",
              static_cast<long long>(st.bufferCapacityElems));
  std::printf("  total cycles           : %lld\n", static_cast<long long>(st.cycles));
  std::printf("    pipeline-enabled     : %lld\n", static_cast<long long>(st.enabledCycles));
  std::printf("    stalls (fill/drain)  : %lld\n", static_cast<long long>(st.stallCycles));
  std::printf("  iterations completed   : %lld\n", static_cast<long long>(st.iterations));
  std::printf("  BRAM element reads     : %lld (array has 68 elements -> each read once)\n",
              static_cast<long long>(st.bramReads));
  std::printf("  BRAM element writes    : %lld\n", static_cast<long long>(st.bramWrites));
  std::printf("  steady-state throughput: %.2f outputs/clock\n", st.steadyStateThroughput());
  std::printf("\n  first outputs: ");
  for (int i = 0; i < 8; ++i) std::printf("%lld ", static_cast<long long>(out.arrays.at("C")[i]));
  std::printf("\n");

  // Fully-pipelined claim: after the fill, one iteration completes per clock.
  const long long overhead = st.cycles - st.iterations;
  std::printf("\n  cycles - iterations = %lld (window fill + pipeline depth + drain)\n", overhead);
  std::printf("  => the data path sustains 1 iteration per clock, as in the paper.\n");
  return 0;
}
