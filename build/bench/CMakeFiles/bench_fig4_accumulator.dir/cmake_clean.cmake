file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_accumulator.dir/bench_fig4_accumulator.cpp.o"
  "CMakeFiles/bench_fig4_accumulator.dir/bench_fig4_accumulator.cpp.o.d"
  "bench_fig4_accumulator"
  "bench_fig4_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
