#include "support/faultpoint.hpp"

namespace roccc {

const std::vector<FaultPointInfo>& faultPointRegistry() {
  // Every compiled-in faultpoint() site, with the pipeline pass that reaches
  // it on a default compile (so the sweep can assert the failing-pass
  // attribution). Keep in sync with the call sites; the injection sweep
  // fails if an entry here no longer fires.
  static const std::vector<FaultPointInfo> kRegistry = {
      {"frontend.parse", "parse"},               // ast::parse (frontend/parser.cpp)
      {"hlir.lut-convert", "lut-convert"},       // convertCallsToLookupTables (hlir/transforms.cpp)
      {"hlir.inline", "inline"},                 // inlineCalls (hlir/transforms.cpp)
      {"hlir.unroll", "unroll"},                 // unroll pass body (roccc/compiler.cpp)
      {"hlir.extract-kernel", "extract-kernel"}, // extractKernel (hlir/kernel.cpp)
      {"mir.lower", "lower-mir"},                // lowerToMir (mir/lower.cpp)
      {"mir.ssa", "ssa-build"},                  // buildSSA (mir/ssa.cpp)
      {"mir.optimize", "mir-optimize"},          // runStandardPasses fixpoint (mir/passes.cpp)
      {"dp.build", "build-datapath"},            // buildDataPath (dp/datapath.cpp)
      {"dp.retime", "retime"},                   // retimePipeline (dp/retime.cpp)
      {"rtl.elaborate", "build-rtl"},            // buildDatapathModule (rtl/from_dp.cpp)
      {"vhdl.emit", "emit-vhdl"},                // vhdl::emitDesign (vhdl/emit.cpp)
      {"verilog.emit", "emit-verilog"},          // verilog::emitDesign (vhdl/verilog.cpp)
      {"driver.job", ""},                        // CompileService job boundary (roccc/driver.cpp)
  };
  return kRegistry;
}

namespace {

// Armed name for this thread, or nullptr. Per-thread (not global) so arming
// one batch job cannot leak into its siblings on other workers; the scope's
// destructor restores the previous value so worker reuse cannot leak either.
thread_local const std::string* tlArmed = nullptr;

} // namespace

void faultpoint(const char* name) {
  if (!tlArmed) return; // the disarmed fast path
  if (*tlArmed == name) throw FaultInjected(name);
}

bool faultInjectionArmed() { return tlArmed != nullptr; }

FaultInjectionScope::FaultInjectionScope(const std::string& name) : prev_(tlArmed), name_(name) {
  if (!name_.empty()) tlArmed = &name_;
}

FaultInjectionScope::~FaultInjectionScope() {
  if (!name_.empty()) tlArmed = prev_;
}

} // namespace roccc
